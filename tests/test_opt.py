"""Tests for the repro.opt netlist-optimization subsystem."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.bench_suite.registry import build_benchmark_netlist, smallest_benchmarks
from repro.fuzz.invariants import check_opt_equivalence, predict_capture
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.validate import validate_netlist
from repro.opt import DEFAULT_LEVEL, MAX_LEVEL, optimize, resolve_level
from repro.opt.satsweep import sat_sweep
from repro.opt.structhash import structural_hash
from repro.opt.sweep import sweep
from repro.sim.logicsim import evaluate
from repro.util.bitvec import random_bits

LEVELS = tuple(range(1, MAX_LEVEL + 1))


def sampled_netlist(seed: int, n_flops: int = 6) -> Netlist:
    rng = random.Random(seed)
    config = GeneratorConfig(
        n_flops=n_flops,
        n_inputs=1 + seed % 5,
        n_outputs=1 + seed % 4,
        gates_per_flop=1.0 + (seed % 3),
        max_fanin=2 + seed % 3,
        locality=(4, 8, 24)[seed % 3],
    )
    return generate_circuit(config, rng, name=f"t{seed}")


def assert_interface_preserved(original: Netlist, optimized: Netlist) -> None:
    assert optimized.inputs == original.inputs
    assert optimized.outputs == original.outputs
    assert list(optimized.dffs) == list(original.dffs)
    assert [d.d for d in optimized.dffs.values()] == [
        d.d for d in original.dffs.values()
    ]


def assert_replay_equal(original: Netlist, optimized: Netlist, seed: int = 0) -> None:
    rng = random.Random(seed)
    states = [random_bits(original.n_dffs, rng) for _ in range(24)]
    pis = [random_bits(len(original.inputs), rng) for _ in range(24)]
    assert predict_capture(optimized, states, pis) == predict_capture(
        original, states, pis
    )


# ----------------------------------------------------------------------
# hypothesis property suite
# ----------------------------------------------------------------------
class TestOptimizeProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), level=st.sampled_from(LEVELS))
    def test_preserves_behaviour_on_sampled_netlists(self, seed, level):
        netlist = sampled_netlist(seed)
        result = optimize(netlist, level=level)
        validate_netlist(result.netlist)
        assert_interface_preserved(netlist, result.netlist)
        assert_replay_equal(netlist, result.netlist, seed)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), level=st.sampled_from(LEVELS))
    def test_idempotent_gate_count(self, seed, level):
        netlist = sampled_netlist(seed)
        once = optimize(netlist, level=level)
        twice = optimize(once.netlist, level=level)
        assert twice.netlist.n_gates == once.netlist.n_gates

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), level=st.sampled_from(LEVELS))
    def test_never_touches_pinned_interface_nets(self, seed, level):
        netlist = sampled_netlist(seed)
        result = optimize(netlist, level=level)
        optimized = result.netlist
        assert_interface_preserved(netlist, optimized)
        # Every output and every DFF D pin is still a *driven* net.
        driven = (
            set(optimized.inputs) | set(optimized.gates) | set(optimized.dffs)
        )
        for net in optimized.outputs:
            assert net in driven
        for dff in optimized.dffs.values():
            assert dff.d in driven

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_cse_merge_agrees_with_scalar_simulation(self, seed):
        netlist = sampled_netlist(seed)
        optimized = optimize(netlist, level=1).netlist
        rng = random.Random(seed ^ 0x5A5A)
        inputs = dict(zip(netlist.inputs, random_bits(len(netlist.inputs), rng)))
        state = dict(zip(netlist.dff_q_nets(), random_bits(netlist.n_dffs, rng)))
        want = evaluate(netlist, inputs, state)
        got = evaluate(optimized, inputs, state)
        for net in list(netlist.outputs) + netlist.dff_d_nets():
            assert got[net] == want[net], net

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_fuzz_invariant_clean_on_sampled_netlists(self, seed):
        netlist = sampled_netlist(seed)
        assert check_opt_equivalence(netlist, random.Random(seed)) == []


# ----------------------------------------------------------------------
# structural hashing unit cases
# ----------------------------------------------------------------------
class TestStructuralHash:
    def build(self, wire):
        netlist = Netlist()
        for net in ("a", "b", "c"):
            netlist.add_input(net)
        wire(netlist)
        return netlist

    def out_gate(self, netlist, net="y"):
        optimized, _ = structural_hash(netlist, frozenset(netlist.outputs))
        return optimized, optimized.gates[net]

    def test_constant_folding_through_and(self):
        netlist = self.build(
            lambda n: (
                n.add_gate("one", GateType.CONST1, []),
                n.add_gate("zero", GateType.CONST0, []),
                n.add_gate("y", GateType.AND, ["a", "one", "b"]),
                n.add_gate("z", GateType.AND, ["a", "zero"]),
                n.add_output("y"),
                n.add_output("z"),
            )
        )
        optimized, gate = self.out_gate(netlist)
        assert gate.gtype is GateType.AND
        assert gate.inputs == ("a", "b")  # identity const dropped
        assert optimized.gates["z"].gtype is GateType.CONST0

    def test_double_negation_collapses(self):
        netlist = self.build(
            lambda n: (
                n.add_gate("n1", GateType.NOT, ["a"]),
                n.add_gate("n2", GateType.NOT, ["n1"]),
                n.add_gate("y", GateType.AND, ["n2", "b"]),
                n.add_output("y"),
            )
        )
        _, gate = self.out_gate(netlist)
        assert gate.inputs == ("a", "b")

    def test_commutative_sorting_enables_cse(self):
        netlist = self.build(
            lambda n: (
                n.add_gate("g1", GateType.AND, ["a", "b"]),
                n.add_gate("g2", GateType.AND, ["b", "a"]),
                n.add_gate("y", GateType.XOR, ["g1", "g2"]),
                n.add_output("y"),
            )
        )
        optimized, _ = structural_hash(netlist, frozenset(netlist.outputs))
        # g1 == g2, so y = XOR(x, x) = 0.
        assert optimized.gates["y"].gtype is GateType.CONST0

    def test_xor_involution_cancels_fanout1_chain(self):
        netlist = self.build(
            lambda n: (
                n.add_gate("inner", GateType.XOR, ["a", "b"]),
                n.add_gate("y", GateType.XOR, ["inner", "b"]),
                n.add_output("y"),
            )
        )
        optimized, _ = structural_hash(netlist, frozenset(netlist.outputs))
        gate = optimized.gates["y"]
        # XOR(XOR(a, b), b) = a; the pinned output keeps a BUF alias.
        assert gate.gtype is GateType.BUF and gate.inputs == ("a",)

    def test_mux_rewrites(self):
        netlist = self.build(
            lambda n: (
                n.add_gate("zero", GateType.CONST0, []),
                n.add_gate("one", GateType.CONST1, []),
                n.add_gate("same", GateType.MUX, ["a", "b", "b"]),
                n.add_gate("asel", GateType.MUX, ["a", "zero", "one"]),
                n.add_gate("inv", GateType.MUX, ["a", "one", "zero"]),
                n.add_gate("andg", GateType.MUX, ["a", "zero", "b"]),
                n.add_output("same"),
                n.add_output("asel"),
                n.add_output("inv"),
                n.add_output("andg"),
            )
        )
        optimized, _ = structural_hash(netlist, frozenset(netlist.outputs))
        assert optimized.gates["same"].inputs == ("b",)  # BUF alias
        assert optimized.gates["asel"].inputs == ("a",)
        assert optimized.gates["inv"].gtype is GateType.NOT
        assert optimized.gates["andg"].gtype is GateType.AND
        assert set(optimized.gates["andg"].inputs) == {"a", "b"}

    def test_complementary_and_inputs_fold_to_constant(self):
        netlist = self.build(
            lambda n: (
                n.add_gate("na", GateType.NOT, ["a"]),
                n.add_gate("y", GateType.AND, ["a", "na", "b"]),
                n.add_gate("z", GateType.OR, ["a", "na"]),
                n.add_output("y"),
                n.add_output("z"),
            )
        )
        optimized, _ = structural_hash(netlist, frozenset(netlist.outputs))
        assert optimized.gates["y"].gtype is GateType.CONST0
        assert optimized.gates["z"].gtype is GateType.CONST1


# ----------------------------------------------------------------------
# sweep unit cases
# ----------------------------------------------------------------------
class TestSweep:
    def test_dead_cone_removed_and_unused_inputs_reported(self):
        netlist = Netlist()
        for net in ("a", "b", "k"):
            netlist.add_input(net)
        netlist.add_gate("live", GateType.AND, ["a", "b"])
        netlist.add_gate("dead1", GateType.OR, ["a", "k"])
        netlist.add_gate("dead2", GateType.NOT, ["dead1"])
        netlist.add_output("live")
        swept, stats = sweep(netlist)
        assert set(swept.gates) == {"live"}
        assert stats["removed_gates"] == 2
        # k fed only dead logic: the unused-key-gate detector flags it.
        assert stats["unused_inputs"] == ["k"]
        assert swept.inputs == netlist.inputs  # never removed, only reported

    def test_dff_d_pins_are_roots(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("ns", GateType.NOT, ["a"])
        netlist.add_dff(q="q0", d="ns")
        swept, stats = sweep(netlist)
        assert "ns" in swept.gates
        assert stats["removed_gates"] == 0


# ----------------------------------------------------------------------
# SAT sweeping
# ----------------------------------------------------------------------
class TestSatSweep:
    def duplicated_cone(self):
        """Two structurally *different* but equivalent cones."""
        netlist = Netlist()
        for net in ("a", "b"):
            netlist.add_input(net)
        # y1 = a XOR b built directly; y2 = the AND/OR expansion.
        netlist.add_gate("y1", GateType.XOR, ["a", "b"])
        netlist.add_gate("na", GateType.NOT, ["a"])
        netlist.add_gate("nb", GateType.NOT, ["b"])
        netlist.add_gate("t1", GateType.AND, ["a", "nb"])
        netlist.add_gate("t2", GateType.AND, ["na", "b"])
        netlist.add_gate("y2", GateType.OR, ["t1", "t2"])
        netlist.add_output("y1")
        netlist.add_output("y2")
        return netlist

    def test_proves_equivalence_cse_cannot_see(self):
        netlist = self.duplicated_cone()
        # Structural hashing alone cannot merge the two encodings...
        hashed, _ = structural_hash(netlist, frozenset(netlist.outputs))
        assert hashed.n_gates == netlist.n_gates
        # ...but the SAT sweep proves y2 == y1.
        substitutions, stats = sat_sweep(netlist, frozenset(netlist.outputs))
        assert substitutions.get("y2") == "y1"
        assert stats["proven_pairs"] >= 1

    def test_level2_merges_and_preserves_behaviour(self):
        netlist = self.duplicated_cone()
        result = optimize(netlist, level=2)
        assert result.netlist.n_gates < netlist.n_gates
        assert_replay_equal(netlist, result.netlist)
        # y2 survives as a pinned alias of the representative.
        assert result.netlist.gates["y2"].gtype is GateType.BUF

    def test_constant_net_detected(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("na", GateType.NOT, ["a"])
        # taut = a OR NOT a, hidden behind an extra NOT pair so plain
        # folding cannot reach it.
        netlist.add_gate("taut", GateType.OR, ["a", "na"])
        netlist.add_gate("y", GateType.XOR, ["taut", "a"])
        netlist.add_output("y")
        substitutions, _ = sat_sweep(netlist, frozenset(netlist.outputs))
        assert substitutions.get("taut") == 1

    def test_const_detection_survives_a_refuted_check(self):
        # A 12-input AND simulates all-zero on random lanes with high
        # probability, so its const-0 check runs first and is refuted
        # (it is satisfiable); the counterexample refines every
        # signature.  The tautology examined afterwards must still be
        # proposed and proven constant-1 -- a regression for refinement
        # words being appended at 1-bit width and breaking the
        # full-mask all-ones comparison.
        netlist = Netlist()
        nets = [f"i{k}" for k in range(12)]
        for net in nets:
            netlist.add_input(net)
        netlist.add_gate("wide", GateType.AND, nets)
        netlist.add_gate("n0", GateType.NOT, ["i0"])
        netlist.add_gate("taut", GateType.OR, ["i0", "n0"])
        netlist.add_gate("y", GateType.XOR, ["wide", "taut"])
        netlist.add_output("y")
        substitutions, stats = sat_sweep(netlist, frozenset(netlist.outputs))
        assert substitutions.get("taut") == 1, stats
        assert stats["refuted"] >= 1, stats  # the wide AND check ran

    def test_refuted_candidates_are_not_merged(self):
        # a AND b and a OR b agree on 3 of 4 input patterns; with few
        # unlucky lanes they may class together, but SAT must refute.
        netlist = Netlist()
        for net in ("a", "b"):
            netlist.add_input(net)
        netlist.add_gate("g1", GateType.AND, ["a", "b"])
        netlist.add_gate("g2", GateType.OR, ["a", "b"])
        netlist.add_output("g1")
        netlist.add_output("g2")
        substitutions, _ = sat_sweep(netlist, frozenset(netlist.outputs))
        assert "g2" not in substitutions
        assert "g1" not in substitutions


# ----------------------------------------------------------------------
# pipeline surface
# ----------------------------------------------------------------------
class TestPipeline:
    def test_level0_is_identity(self):
        netlist = sampled_netlist(3)
        result = optimize(netlist, level=0)
        assert result.netlist is netlist
        assert result.stats.passes == []

    def test_resolve_level_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_OPT_LEVEL", raising=False)
        assert resolve_level(None) == DEFAULT_LEVEL
        monkeypatch.setenv("REPRO_OPT_LEVEL", "2")
        assert resolve_level(None) == 2
        assert resolve_level(0) == 0  # explicit always wins
        monkeypatch.setenv("REPRO_OPT_LEVEL", "7")
        with pytest.raises(ValueError):
            resolve_level(None)

    def test_stats_are_json_safe(self):
        netlist = sampled_netlist(5)
        stats = optimize(netlist, level=2).stats
        import json

        payload = json.dumps(stats.as_dict())
        assert '"level": 2' in payload

    def test_input_netlist_never_mutated(self):
        netlist = sampled_netlist(7)
        gates_before = dict(netlist.gates)
        optimize(netlist, level=2)
        assert netlist.gates == gates_before

    def test_extra_pin_survives(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("keep", GateType.NOT, ["a"])
        netlist.add_gate("y", GateType.NOT, ["keep"])
        netlist.add_output("y")
        # Without the pin, "keep" would be absorbed by double negation.
        result = optimize(netlist, level=1, pin=("keep",))
        assert "keep" in result.netlist.gates


# ----------------------------------------------------------------------
# recovered keys are byte-identical with and without optimization
# ----------------------------------------------------------------------
class TestKeyIdentity:
    @pytest.mark.parametrize("bench_name", smallest_benchmarks(2, scale=16))
    @pytest.mark.requires_numpy
    def test_dynunlock_recovers_identical_seed(self, bench_name):
        from repro.core.dynunlock import DynUnlockConfig, dynunlock
        from repro.locking.effdyn import lock_with_effdyn

        netlist = build_benchmark_netlist(bench_name, scale=16)
        lock = lock_with_effdyn(netlist, key_bits=8, rng=random.Random(11))
        outcomes = {}
        for level in (0,) + LEVELS:
            result = dynunlock(
                netlist,
                lock.public_view(),
                lock.make_oracle(),
                DynUnlockConfig(opt_level=level),
            )
            outcomes[level] = (result.success, result.recovered_seed)
        assert outcomes[0][0], "baseline attack must succeed"
        for level in LEVELS:
            assert outcomes[level] == outcomes[0]

    def test_scramble_sat_recovers_identical_key(self):
        from repro.attack.scramble_sat import scramble_sat_on_lock
        from repro.locking.scramble import lock_with_scramble

        netlist = sampled_netlist(21, n_flops=8)
        lock = lock_with_scramble(netlist, key_bits=3, rng=random.Random(2))
        keys = {
            level: scramble_sat_on_lock(lock, opt_level=level).recovered_key
            for level in (0,) + LEVELS
        }
        assert keys[0] is not None
        for level in LEVELS:
            assert keys[level] == keys[0]

    def test_scansat_recovers_identical_key(self):
        from repro.attack.scansat import scansat_attack_on_lock
        from repro.locking.eff import lock_with_eff

        netlist = sampled_netlist(33, n_flops=8)
        lock = lock_with_eff(netlist, key_bits=4, rng=random.Random(5))
        keys = {
            level: scansat_attack_on_lock(lock, opt_level=level).recovered_key
            for level in (0,) + LEVELS
        }
        assert keys[0] is not None
        for level in LEVELS:
            assert keys[level] == keys[0]


# ----------------------------------------------------------------------
# attack-model reduction sanity
# ----------------------------------------------------------------------
class TestModelReduction:
    @pytest.mark.requires_numpy
    def test_effdyn_model_shrinks_meaningfully(self):
        from repro.core.modeling import build_combinational_model
        from repro.locking.effdyn import lock_with_effdyn

        netlist = build_benchmark_netlist("s5378", scale=16)
        lock = lock_with_effdyn(netlist, key_bits=8, rng=random.Random(1))
        model = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, 8
        )
        stats = optimize(model.netlist, level=1).stats
        assert stats.reduction > 0.15  # measured ~0.3 at this shape
        assert stats.gates_after < stats.gates_before
