"""Concurrent-writer stress: N processes hammer one store per backend.

Every worker repeatedly puts and gets the same pool of specs in a
shuffled order, so writers overlap on identical keys while readers race
the in-flight replacements.  Because each spec's payload is a pure
function of its index, every writer writes *identical bytes* -- which
turns the invariants into sharp assertions:

* no torn reads: every ``get`` is either a miss or exactly the expected
  result (file backends guarantee this via atomic ``os.replace``; the
  SQLite backend via WAL transactions);
* no lost results: after the stampede, every spec is present;
* byte-identical get-after-put: the surviving raw entry equals
  ``encode_entry`` output exactly.
"""

import random
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.runner.spec import JobSpec
from repro.runner.stores import BACKENDS, encode_entry, entry_key, open_store

VERSION = "w" * 20
N_WORKERS = 4
N_SPECS = 10
ROUNDS = 6


def _spec(index: int) -> JobSpec:
    return JobSpec(
        experiment=f"stress{index % 2}",
        params={"cell": index},
        profile={"name": "stress"},
    )


def _expected(index: int) -> dict:
    # Deterministic per spec so concurrent writers all write the same
    # bytes; any deviation observed by a reader is a torn read.
    return {"cell": index, "keystream": "ab" * (8 * (index + 1))}


def _hammer(root: str, backend: str, worker_seed: int) -> list[str]:
    """One worker process; returns observed anomalies (empty == clean)."""
    rng = random.Random(worker_seed)
    anomalies: list[str] = []
    with open_store(root, backend=backend, version=VERSION) as store:
        for round_index in range(ROUNDS):
            order = list(range(N_SPECS))
            rng.shuffle(order)
            for index in order:
                spec = _spec(index)
                store.put(spec, _expected(index), duration_s=1.0)
                got = store.get(spec)
                if got != _expected(index):
                    anomalies.append(
                        f"worker {worker_seed} round {round_index}: "
                        f"get-after-put for cell {index} returned {got!r}"
                    )
            for index in range(N_SPECS):
                got = store.get(_spec(index))
                if got is not None and got != _expected(index):
                    anomalies.append(
                        f"worker {worker_seed} round {round_index}: "
                        f"torn read for cell {index}: {got!r}"
                    )
    return anomalies


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_concurrent_writers_never_tear_or_lose_results(tmp_path, backend):
    root = tmp_path / "cache"
    with ProcessPoolExecutor(max_workers=N_WORKERS) as pool:
        futures = [
            pool.submit(_hammer, str(root), backend, worker)
            for worker in range(N_WORKERS)
        ]
        anomalies = [a for future in futures for a in future.result(timeout=300)]
    assert anomalies == []

    with open_store(root, backend=backend, version=VERSION) as store:
        # No lost results: every completed put is visible afterwards.
        assert len(store) == N_SPECS
        for index in range(N_SPECS):
            assert store.get(_spec(index)) == _expected(index)
        # Byte-identical survivors: whichever writer won last, the raw
        # entry bytes equal the canonical encoding exactly.
        raw_by_key = {(e.experiment, e.key): e.raw for e in store.iterate()}
        for index in range(N_SPECS):
            spec = _spec(index)
            expected_raw = encode_entry(spec, _expected(index), duration_s=1.0)
            assert raw_by_key[(spec.experiment, entry_key(spec))] == expected_raw
