"""Unit tests for repro.util.rng."""

from repro.util.rng import DeterministicRng, hash_label


class TestHashLabel:
    def test_stable(self):
        assert hash_label(42, "abc") == hash_label(42, "abc")

    def test_label_sensitivity(self):
        assert hash_label(42, "abc") != hash_label(42, "abd")

    def test_seed_sensitivity(self):
        assert hash_label(41, "abc") != hash_label(42, "abc")

    def test_fits_64_bits(self):
        assert 0 <= hash_label(2**62, "x" * 100) < 2**64


class TestDeterministicRng:
    def test_same_label_same_stream(self):
        a = DeterministicRng(7).stream("x").random()
        b = DeterministicRng(7).stream("x").random()
        assert a == b

    def test_different_labels_diverge(self):
        rng = DeterministicRng(7)
        assert rng.stream("x").random() != rng.stream("y").random()

    def test_stream_is_cached(self):
        rng = DeterministicRng(7)
        assert rng.stream("x") is rng.stream("x")

    def test_label_isolation(self):
        """Draws from one stream do not perturb another."""
        rng1 = DeterministicRng(7)
        rng1.stream("noise").random()
        value1 = rng1.stream("signal").random()

        rng2 = DeterministicRng(7)
        value2 = rng2.stream("signal").random()
        assert value1 == value2

    def test_fork_is_deterministic(self):
        a = DeterministicRng(7).fork("child").stream("s").random()
        b = DeterministicRng(7).fork("child").stream("s").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = DeterministicRng(7)
        child = parent.fork("child")
        assert parent.stream("s").random() != child.stream("s").random()


# ----------------------------------------------------------------------
# hypothesis property suites: stability and stream independence
# ----------------------------------------------------------------------
from hypothesis import given, strategies as st  # noqa: E402

label = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=0,
    max_size=24,
)
seed = st.integers(min_value=0, max_value=2**64 - 1)


class TestHashLabelProperties:
    @given(seed, label)
    def test_stable_and_64_bit(self, s, text):
        assert hash_label(s, text) == hash_label(s, text)
        assert 0 <= hash_label(s, text) < 2**64

    @given(seed, label)
    def test_label_extension_changes_the_hash(self, s, text):
        # Not a cryptographic claim -- just that the mix actually
        # consumes every label character (a constant function would
        # pass the stability test above).
        assert hash_label(s, text) != hash_label(s, text + "x")

    @given(label)
    def test_seed_changes_the_hash(self, text):
        assert hash_label(1, text) != hash_label(2, text)


class TestStreamIndependenceProperties:
    @given(seed, label, label, st.integers(min_value=0, max_value=8))
    def test_draws_elsewhere_never_perturb_a_stream(
        self, s, wanted, noise, n_noise_draws
    ):
        """The sequence of stream ``wanted`` is a function of (seed,
        label) alone, regardless of interleaved traffic on any other
        label -- the property every cell's determinism rests on."""
        if wanted == noise:
            return
        quiet = DeterministicRng(s)
        reference = [quiet.stream(wanted).random() for _ in range(3)]

        busy = DeterministicRng(s)
        busy.stream(noise).random()
        observed = []
        for i in range(3):
            observed.append(busy.stream(wanted).random())
            for _ in range(n_noise_draws):
                busy.stream(noise).random()
        assert observed == reference

    @given(seed, label)
    def test_fork_equals_rerooting_at_the_derived_seed(self, s, text):
        forked = DeterministicRng(s).fork(text).stream("x").random()
        rerooted = (
            DeterministicRng(hash_label(s, text)).stream("x").random()
        )
        assert forked == rerooted

    @given(seed, label)
    def test_stream_creation_order_is_irrelevant(self, s, text):
        other = text + "'"
        ab = DeterministicRng(s)
        ab.stream(text)
        ab.stream(other)
        ba = DeterministicRng(s)
        ba.stream(other)
        ba.stream(text)
        assert ab.stream(text).random() == ba.stream(text).random()
