"""Unit tests for repro.util.rng."""

from repro.util.rng import DeterministicRng, hash_label


class TestHashLabel:
    def test_stable(self):
        assert hash_label(42, "abc") == hash_label(42, "abc")

    def test_label_sensitivity(self):
        assert hash_label(42, "abc") != hash_label(42, "abd")

    def test_seed_sensitivity(self):
        assert hash_label(41, "abc") != hash_label(42, "abc")

    def test_fits_64_bits(self):
        assert 0 <= hash_label(2**62, "x" * 100) < 2**64


class TestDeterministicRng:
    def test_same_label_same_stream(self):
        a = DeterministicRng(7).stream("x").random()
        b = DeterministicRng(7).stream("x").random()
        assert a == b

    def test_different_labels_diverge(self):
        rng = DeterministicRng(7)
        assert rng.stream("x").random() != rng.stream("y").random()

    def test_stream_is_cached(self):
        rng = DeterministicRng(7)
        assert rng.stream("x") is rng.stream("x")

    def test_label_isolation(self):
        """Draws from one stream do not perturb another."""
        rng1 = DeterministicRng(7)
        rng1.stream("noise").random()
        value1 = rng1.stream("signal").random()

        rng2 = DeterministicRng(7)
        value2 = rng2.stream("signal").random()
        assert value1 == value2

    def test_fork_is_deterministic(self):
        a = DeterministicRng(7).fork("child").stream("s").random()
        b = DeterministicRng(7).fork("child").stream("s").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = DeterministicRng(7)
        child = parent.fork("child")
        assert parent.stream("s").random() != child.stream("s").random()
