"""Tests for the combinational and sequential simulators."""

import random

import pytest

np = pytest.importorskip("numpy")  # whole-module skip on the numpy-less leg
from hypothesis import given, settings, strategies as st

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.bench_suite.iscas import s27_netlist
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist, NetlistError
from repro.sim.logicsim import CombinationalSimulator, evaluate, evaluate_many
from repro.sim.seqsim import SequentialSimulator
from repro.util.bitvec import random_bits


def tiny_circuit() -> Netlist:
    netlist = Netlist("tiny")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_gate("n", GateType.NAND, ["a", "b"])
    netlist.add_gate("y", GateType.XOR, ["n", "a"])
    netlist.add_output("y")
    return netlist


class TestCombinationalEvaluate:
    def test_truth_table(self):
        netlist = tiny_circuit()
        expected = {(0, 0): 1, (0, 1): 1, (1, 0): 0, (1, 1): 1}
        for (a, b), y in expected.items():
            values = evaluate(netlist, {"a": a, "b": b})
            assert values["y"] == y

    def test_missing_input_rejected(self):
        with pytest.raises(NetlistError):
            evaluate(tiny_circuit(), {"a": 1})

    def test_missing_state_rejected(self):
        with pytest.raises(NetlistError):
            evaluate(s27_netlist(), {"G0": 0, "G1": 0, "G2": 0, "G3": 0})

    def test_non_bit_rejected(self):
        with pytest.raises(NetlistError):
            evaluate(tiny_circuit(), {"a": 2, "b": 0})

    def test_constants(self):
        netlist = Netlist("c")
        netlist.add_gate("one", GateType.CONST1, [])
        netlist.add_gate("zero", GateType.CONST0, [])
        netlist.add_output("one")
        values = evaluate(netlist, {})
        assert values["one"] == 1
        assert values["zero"] == 0


class TestVectorisedEvaluate:
    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_vectorised_matches_scalar(self, seed):
        """The numpy path must agree with the scalar path bit-for-bit."""
        rng = random.Random(seed)
        config = GeneratorConfig(n_flops=6, n_inputs=4, n_outputs=3)
        netlist = generate_circuit(config, rng, name="v")
        sim = CombinationalSimulator(netlist)

        n_patterns = 17
        columns = {
            net: np.array(random_bits(n_patterns, rng), dtype=np.uint8)
            for net in list(netlist.inputs) + list(netlist.dffs)
        }
        vec_values = sim.run_many(columns)
        for p in range(n_patterns):
            scalar = sim.run(
                {net: int(columns[net][p]) for net in netlist.inputs},
                {net: int(columns[net][p]) for net in netlist.dffs},
            )
            for net in netlist.outputs:
                assert int(vec_values[net][p]) == scalar[net]

    def test_missing_column_rejected(self):
        with pytest.raises(NetlistError):
            evaluate_many(tiny_circuit(), {"a": np.zeros(4, dtype=np.uint8)})

    def test_ragged_columns_rejected(self):
        with pytest.raises(NetlistError):
            evaluate_many(
                tiny_circuit(),
                {
                    "a": np.zeros(4, dtype=np.uint8),
                    "b": np.zeros(5, dtype=np.uint8),
                },
            )


class TestSequentialSimulator:
    def test_reset_and_state_access(self):
        sim = SequentialSimulator(s27_netlist())
        assert sim.get_state_vector() == [0, 0, 0]
        sim.set_state_vector([1, 0, 1])
        assert sim.get_state_vector() == [1, 0, 1]
        sim.reset()
        assert sim.get_state_vector() == [0, 0, 0]

    def test_bad_state_vector_length(self):
        sim = SequentialSimulator(s27_netlist())
        with pytest.raises(NetlistError):
            sim.set_state_vector([0, 1])

    def test_bad_state_bit(self):
        sim = SequentialSimulator(s27_netlist())
        with pytest.raises(NetlistError):
            sim.set_state_vector([0, 1, 2])

    def test_step_clocks_all_flops_simultaneously(self):
        """Classic shift-register check: Q values move one stage per edge."""
        netlist = Netlist("sr")
        netlist.add_input("si")
        netlist.add_dff("q0", "si")
        netlist.add_dff("q1", "q0")
        netlist.add_dff("q2", "q1")
        sim = SequentialSimulator(netlist)
        stream = [1, 0, 1, 1]
        seen = []
        for bit in stream:
            sim.step({"si": bit})
            seen.append(sim.get_state_vector())
        assert seen[0] == [1, 0, 0]
        assert seen[1] == [0, 1, 0]
        assert seen[2] == [1, 0, 1]
        assert seen[3] == [1, 1, 0]

    def test_outputs_before_clock(self):
        netlist = Netlist("t")
        netlist.add_input("d")
        netlist.add_dff("q", "d")
        netlist.add_gate("y", GateType.BUF, ["q"])
        netlist.add_output("y")
        sim = SequentialSimulator(netlist)
        # Output reflects current state, not the incoming D value.
        assert sim.outputs({"d": 1}) == [0]
        sim.step({"d": 1})
        assert sim.outputs({"d": 0}) == [1]

    def test_run_collects_trace(self):
        netlist = Netlist("t")
        netlist.add_input("d")
        netlist.add_dff("q", "d")
        netlist.add_gate("y", GateType.BUF, ["q"])
        netlist.add_output("y")
        sim = SequentialSimulator(netlist)
        trace = sim.run([{"d": 1}, {"d": 0}, {"d": 0}])
        assert trace == [[0], [1], [0]]

    def test_s27_functional_behaviour_is_deterministic(self):
        rng = random.Random(5)
        inputs = [dict(zip(s27_netlist().inputs, random_bits(4, rng))) for _ in range(30)]
        t1 = SequentialSimulator(s27_netlist()).run(inputs)
        t2 = SequentialSimulator(s27_netlist()).run(inputs)
        assert t1 == t2
