"""Tests for structural netlist transforms."""

import random

import pytest

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.bench_suite.iscas import s27_netlist
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist, NetlistError
from repro.netlist.transform import (
    copy_netlist,
    copy_with_prefix,
    count_transitive_fanin,
    extract_combinational_core,
    merge_netlists,
    strip_outputs,
)
from repro.netlist.validate import validate_netlist
from repro.sim.logicsim import evaluate
from repro.sim.seqsim import SequentialSimulator
from repro.util.bitvec import random_bits


class TestCopy:
    def test_prefix_applies_to_all_nets(self):
        copied = copy_with_prefix(s27_netlist(), "X/")
        assert all(net.startswith("X/") for net in copied.inputs)
        assert all(net.startswith("X/") for net in copied.gates)
        assert all(net.startswith("X/") for net in copied.dffs)
        validate_netlist(copied)

    def test_copy_is_independent(self):
        original = s27_netlist()
        clone = copy_netlist(original)
        clone.add_input("extra")
        assert "extra" not in original.inputs


class TestMerge:
    def test_disjoint_merge(self):
        a = Netlist("a")
        a.add_input("x")
        a.add_gate("y", GateType.NOT, ["x"])
        a.add_output("y")
        b = Netlist("b")
        b.add_input("p")
        b.add_gate("q", GateType.NOT, ["p"])
        b.add_output("q")
        merged = merge_netlists(a, b)
        assert set(merged.inputs) == {"x", "p"}
        assert set(merged.outputs) == {"y", "q"}
        validate_netlist(merged)

    def test_shared_input_kept_once(self):
        a = Netlist("a")
        a.add_input("x")
        a.add_gate("y", GateType.NOT, ["x"])
        b = Netlist("b")
        b.add_input("x")
        b.add_gate("z", GateType.BUF, ["x"])
        merged = merge_netlists(a, b)
        assert merged.inputs.count("x") == 1

    def test_driver_collision_rejected(self):
        a = Netlist("a")
        a.add_input("x")
        a.add_gate("y", GateType.NOT, ["x"])
        b = Netlist("b")
        b.add_input("x")
        b.add_gate("y", GateType.BUF, ["x"])
        with pytest.raises(NetlistError):
            merge_netlists(a, b)


class TestExtractCombinationalCore:
    def test_core_has_no_flops(self):
        core, ppi, ppo = extract_combinational_core(s27_netlist())
        assert core.n_dffs == 0
        assert len(ppi) == 3
        assert len(ppo) == 3
        validate_netlist(core)

    def test_core_agrees_with_sequential_step(self):
        """One functional clock == core evaluation with ppi = state."""
        netlist = s27_netlist()
        core, ppi_nets, ppo_nets = extract_combinational_core(netlist)
        rng = random.Random(11)
        for _ in range(20):
            state = random_bits(3, rng)
            pis = random_bits(4, rng)

            sim = SequentialSimulator(netlist)
            sim.set_state_vector(state)
            pre_edge = sim.step(dict(zip(netlist.inputs, pis)))
            expected_next = sim.get_state_vector()
            expected_outs = [pre_edge[net] for net in netlist.outputs]

            inputs = dict(zip(netlist.inputs, pis))
            inputs.update(zip(ppi_nets, state))
            values = evaluate(core, inputs)
            assert [values[net] for net in ppo_nets] == expected_next
            assert [values[net] for net in netlist.outputs] == expected_outs

    def test_core_agreement_on_synthetic_circuit(self):
        config = GeneratorConfig(n_flops=12, n_inputs=5, n_outputs=4)
        netlist = generate_circuit(config, random.Random(3), name="syn")
        core, ppi_nets, ppo_nets = extract_combinational_core(netlist)
        rng = random.Random(4)
        for _ in range(10):
            state = random_bits(12, rng)
            pis = random_bits(5, rng)
            sim = SequentialSimulator(netlist)
            sim.set_state_vector(state)
            sim.step(dict(zip(netlist.inputs, pis)))
            inputs = dict(zip(netlist.inputs, pis))
            inputs.update(zip(ppi_nets, state))
            values = evaluate(core, inputs)
            assert [values[net] for net in ppo_nets] == sim.get_state_vector()


class TestStripOutputs:
    def test_keeps_subset(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate("x", GateType.NOT, ["a"])
        netlist.add_gate("y", GateType.BUF, ["a"])
        netlist.add_output("x")
        netlist.add_output("y")
        stripped = strip_outputs(netlist, ["y"])
        assert stripped.outputs == ["y"]

    def test_rejects_non_output(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            strip_outputs(netlist, ["a"])


class TestFanin:
    def test_counts_cone(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate("x", GateType.NOT, ["a"])
        netlist.add_gate("y", GateType.NOT, ["x"])
        netlist.add_gate("z", GateType.NOT, ["a"])
        assert count_transitive_fanin(netlist, "y") == 2
        assert count_transitive_fanin(netlist, "z") == 1
        assert count_transitive_fanin(netlist, "a") == 0
