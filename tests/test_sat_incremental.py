"""The incremental session API: assumption solving must agree with
monolithic solving, learned clauses must persist across calls, clause
groups must activate/retire correctly, and failed-assumption cores must
be genuine cores."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.cnf import Cnf
from repro.sat.incremental import IncrementalSolver
from repro.sat.solver import CdclSolver


def random_cnf(rng: random.Random, n_vars: int, n_clauses: int, width: int = 3) -> Cnf:
    cnf = Cnf(n_vars)
    for _ in range(n_clauses):
        clause_vars = rng.sample(range(1, n_vars + 1), min(width, n_vars))
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in clause_vars])
    return cnf


def monolithic_satisfiable(cnf: Cnf, assumptions: list[int]) -> bool:
    """Reference: fresh solver on the formula plus assumption units."""
    solver = CdclSolver(cnf)
    for lit in assumptions:
        solver.add_clause([lit])
    return solver.solve().satisfiable is True


class TestAssumptionsAgreeWithMonolithic:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_cnfs(self, seed):
        rng = random.Random(seed)
        n_vars = rng.randint(3, 10)
        cnf = random_cnf(rng, n_vars, rng.randint(1, 40))
        session = IncrementalSolver(cnf)
        # Several assumption sets against ONE session: persistence of the
        # learned-clause database must never change answers.
        for _ in range(4):
            assumptions = [
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, n_vars + 1), rng.randint(0, n_vars))
            ]
            expected = monolithic_satisfiable(cnf, assumptions)
            result = session.solve(assumptions=assumptions)
            assert (result.satisfiable is True) == expected
            if result.satisfiable:
                model = result.model
                for lit in assumptions:
                    assert model[abs(lit)] == (1 if lit > 0 else 0)
                assert cnf.evaluate(model)

    def test_interleaved_clause_addition(self):
        rng = random.Random(7)
        session = IncrementalSolver()
        cnf = Cnf(8)
        for round_ in range(6):
            extra = random_cnf(rng, 8, 6)
            for clause in extra.clauses:
                cnf.add_clause(clause)
                session.add_clause(clause)
            assumptions = [rng.choice([1, -1]) * rng.randint(1, 8)]
            expected = monolithic_satisfiable(cnf, assumptions)
            got = session.solve(assumptions=assumptions).satisfiable
            if got is False and not expected:
                # Session may be globally UNSAT already; both agree.
                continue
            assert (got is True) == expected


def pigeonhole_cnf(holes: int) -> Cnf:
    pigeons = holes + 1
    cnf = Cnf()
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[(p, h)] = cnf.new_var()
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


class TestLearnedClausePersistence:
    def test_learned_clauses_persist_and_speed_up_repeat_solves(self):
        cnf = pigeonhole_cnf(5)
        session = IncrementalSolver()
        guard = session.new_group()
        shift = guard  # pigeonhole vars come after the guard variable
        for clause in cnf.clauses:
            session.add_clause(
                [lit + shift if lit > 0 else lit - shift for lit in clause],
                group=guard,
            )
        first = session.solve(groups=[guard])
        assert first.satisfiable is False
        learned_after_first = len(session._learnts)
        conflicts_first = session.stats.conflicts
        assert conflicts_first > 0
        assert learned_after_first > 0

        second = session.solve(groups=[guard])
        assert second.satisfiable is False
        # The database was not wiped between calls...
        assert len(session._learnts) >= 1
        # ...and the repeat refutation reuses it: strictly less new search
        # than the first proof needed.
        conflicts_second = session.stats.conflicts - conflicts_first
        assert conflicts_second <= conflicts_first

        # Without the group the formula is satisfiable again.
        assert session.solve().satisfiable is True


class TestClauseGroups:
    def test_group_clauses_only_bind_when_active(self):
        session = IncrementalSolver()
        x = session.new_var()
        g = session.new_group()
        session.add_clause([-x], group=g)
        session.add_clause([x])
        assert session.solve(groups=[g]).satisfiable is False
        assert session.solve().satisfiable is True

    def test_release_group_retires_clauses_forever(self):
        session = IncrementalSolver()
        x = session.new_var()
        g = session.new_group()
        session.add_clause([-x], group=g)
        session.add_clause([x])
        session.release_group(g)
        assert session.solve(groups=[g]).satisfiable is False  # g pinned false
        assert session.solve().satisfiable is True
        # Clauses added to a released group are dropped outright.
        assert session.add_clause([-x], group=g) is True
        assert session.solve().satisfiable is True


class TestFailedAssumptionCores:
    def test_core_is_subset_and_unsat(self):
        session = IncrementalSolver()
        a, b, c, d = (session.new_var() for _ in range(4))
        session.add_clause([-a, b])
        session.add_clause([-b, -c])
        assumptions = [a, c, d]  # a -> b -> not c, so {a, c} conflict
        result = session.solve(assumptions=assumptions)
        assert result.satisfiable is False
        assert result.core is not None
        assert set(result.core) <= set(assumptions)
        assert d not in result.core  # d played no part
        # The core alone refutes: monolithic check.
        probe = CdclSolver()
        probe.add_clause([-a, b])
        probe.add_clause([-b, -c])
        for lit in result.core:
            probe.add_clause([lit])
        assert probe.solve().satisfiable is False

    def test_core_empty_when_formula_itself_unsat(self):
        session = IncrementalSolver()
        session.add_clause([1])
        session.add_clause([-1])
        result = session.solve(assumptions=[2])
        assert result.satisfiable is False
        assert result.core == []

    def test_opposite_assumptions_core(self):
        session = IncrementalSolver()
        v = session.new_var()
        result = session.solve(assumptions=[v, -v])
        assert result.satisfiable is False
        assert set(result.core) == {v, -v}

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_cores_refute(self, seed):
        rng = random.Random(seed)
        n_vars = rng.randint(3, 8)
        cnf = random_cnf(rng, n_vars, rng.randint(5, 30))
        assumptions = [
            v if rng.random() < 0.5 else -v for v in range(1, n_vars + 1)
        ]
        session = IncrementalSolver(cnf)
        result = session.solve(assumptions=assumptions)
        if result.satisfiable is False and result.core:
            assert set(result.core) <= set(assumptions)
            assert not monolithic_satisfiable(cnf, result.core)


class TestModelAccess:
    def test_values_reads_last_model(self):
        session = IncrementalSolver()
        a, b = session.new_var(), session.new_var()
        session.add_clause([a])
        session.add_clause([-a, b])
        assert session.solve().satisfiable is True
        assert session.value(a) == 1
        assert session.values([a, b]) == [1, 1]

    def test_value_raises_without_model(self):
        session = IncrementalSolver()
        with pytest.raises(RuntimeError):
            session.value(1)
        v = session.new_var()
        session.add_clause([v])
        session.add_clause([-v])
        session.solve()
        with pytest.raises(RuntimeError):
            session.value(v)


class TestAbsorb:
    def test_absorb_streams_only_the_suffix(self):
        cnf = Cnf()
        a, b = cnf.new_vars(2)
        cnf.add_clause([a, b])
        session = IncrementalSolver()
        synced = session.absorb(cnf)
        assert synced == 1
        assert session.solve().satisfiable is True
        cnf.add_clause([-a])
        cnf.add_clause([-b])
        synced = session.absorb(cnf, already_synced=synced)
        assert synced == 3
        assert session.solve().satisfiable is False
