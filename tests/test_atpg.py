"""Tests for the stuck-at fault model, fault simulator and SAT ATPG."""

import random

import pytest

from repro.atpg.atpg import generate_test, generate_test_set
from repro.atpg.fault_sim import FaultSimulator, fault_coverage
from repro.atpg.faults import StuckAtFault, enumerate_faults
from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.bench_suite.iscas import s27_netlist
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist, NetlistError
from repro.netlist.transform import extract_combinational_core


def and_gate() -> Netlist:
    netlist = Netlist("and")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_gate("y", GateType.AND, ["a", "b"])
    netlist.add_output("y")
    return netlist


class TestFaultModel:
    def test_bad_stuck_value(self):
        with pytest.raises(ValueError):
            StuckAtFault("x", 2)

    def test_str(self):
        assert str(StuckAtFault("n1", 0)) == "n1/SA0"

    def test_enumeration_covers_both_polarities(self):
        faults = list(enumerate_faults(and_gate()))
        assert len(faults) == 6  # (a, b, y) x (SA0, SA1)
        assert StuckAtFault("y", 1) in faults

    def test_enumeration_without_inputs(self):
        faults = list(enumerate_faults(and_gate(), include_inputs=False))
        assert len(faults) == 2


class TestFaultSimulator:
    def test_detection_on_and_gate(self):
        sim = FaultSimulator(and_gate())
        # Pattern (1,1) detects y/SA0.
        assert sim.detects({"a": 1, "b": 1}, StuckAtFault("y", 0))
        # Pattern (0,0) does not detect y/SA0 (output already 0).
        assert not sim.detects({"a": 0, "b": 0}, StuckAtFault("y", 0))
        # Input fault a/SA1 needs a=0, b=1.
        assert sim.detects({"a": 0, "b": 1}, StuckAtFault("a", 1))
        assert not sim.detects({"a": 0, "b": 0}, StuckAtFault("a", 1))

    def test_sequential_rejected(self):
        with pytest.raises(NetlistError):
            FaultSimulator(s27_netlist())

    def test_coverage_bounds(self):
        netlist = and_gate()
        faults = list(enumerate_faults(netlist))
        all_patterns = [
            {"a": a, "b": b} for a in (0, 1) for b in (0, 1)
        ]
        assert fault_coverage(netlist, all_patterns, faults) == 1.0
        assert fault_coverage(netlist, [{"a": 0, "b": 0}], faults) < 1.0
        assert fault_coverage(netlist, [], []) == 1.0


class TestSatAtpg:
    def test_generates_detecting_pattern(self):
        netlist = and_gate()
        fault = StuckAtFault("y", 0)
        pattern = generate_test(netlist, fault)
        assert pattern == {"a": 1, "b": 1}

    def test_input_fault(self):
        netlist = and_gate()
        pattern = generate_test(netlist, StuckAtFault("a", 1))
        assert pattern == {"a": 0, "b": 1}

    def test_untestable_fault_returns_none(self):
        # y = a OR (a AND b): the AND output stuck-at-0 is masked... build
        # a genuinely redundant node: y = a OR (a AND b) -> (a AND b)/SA0
        # is undetectable because y == a whenever the AND matters.
        netlist = Netlist("red")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_gate("ab", GateType.AND, ["a", "b"])
        netlist.add_gate("y", GateType.OR, ["a", "ab"])
        netlist.add_output("y")
        assert generate_test(netlist, StuckAtFault("ab", 0)) is None

    def test_sequential_rejected(self):
        with pytest.raises(NetlistError):
            generate_test(s27_netlist(), StuckAtFault("G10", 0))

    def test_unknown_site_rejected(self):
        with pytest.raises(NetlistError):
            generate_test(and_gate(), StuckAtFault("zzz", 0))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_generated_patterns_verified_by_fault_sim(self, seed):
        """Every ATPG pattern must actually detect its target fault."""
        rng = random.Random(seed)
        config = GeneratorConfig(n_flops=5, n_inputs=4, n_outputs=3)
        core, _, _ = extract_combinational_core(
            generate_circuit(config, rng, name=f"atpg{seed}")
        )
        sim = FaultSimulator(core)
        faults = list(enumerate_faults(core))[:30]
        for fault in faults:
            pattern = generate_test(core, fault)
            if pattern is not None:
                assert sim.detects(pattern, fault)

    def test_generate_test_set_coverage(self):
        rng = random.Random(9)
        config = GeneratorConfig(n_flops=4, n_inputs=4, n_outputs=3)
        core, _, _ = extract_combinational_core(
            generate_circuit(config, rng, name="set")
        )
        faults = list(enumerate_faults(core))[:40]
        result = generate_test_set(core, faults)
        assert result.coverage > 0.5
        assert len(result.detected) + len(result.untestable) + len(
            result.aborted
        ) == len(faults)
        # Patterns from the set must jointly cover all detected faults.
        assert fault_coverage(
            core, result.patterns, result.detected
        ) == 1.0
