"""Tests for the differential-fuzzing subsystem (repro.fuzz).

The properties pinned here are the subsystem's contract:

* sampling and trial cells are pure functions of (seed, index, params);
* campaigns aggregate identically at any ``jobs`` level and on reruns;
* all built-in defenses/attacks satisfy the invariants at fuzz sizes
  (a green quick campaign);
* planted soundness bugs -- a lying attack, a broken oracle, a crashing
  cell -- are detected, minimized by the shrinker, persisted to the
  corpus, and reproduced by replay;
* the crash corpus round-trips byte-for-byte and tolerates nothing.
"""

import json

import pytest

from repro.bench_suite.generator import (
    GeneratorConfig,
    SAMPLE_FLOP_RANGE,
    config_from_dict,
    config_to_dict,
    sample_config,
)
from repro.fuzz.campaign import (
    CampaignReport,
    campaign_rows,
    fuzz_cell,
    fuzz_trial_specs,
    run_campaign,
    sample_trial_params,
)
from repro.fuzz.corpus import (
    CorpusError,
    CrashEntry,
    entry_path,
    load_corpus,
    replay_entry,
    write_entry,
)
from repro.fuzz.invariants import (
    ATTACK_REPLAY,
    CRASH,
    EXEC_STABILITY,
    KEY_EQUIVALENCE,
    check_key_equivalence,
)
from repro.fuzz.shrink import (
    PARAM_FLOORS,
    candidate_reductions,
    shrink_trial,
    trial_fails,
)
from repro.locking.eff import EffStaticLock, lock_with_eff
from repro.matrix.registry import (
    AttackOutcome,
    get_attack,
    get_defense,
    is_applicable,
    register_attack,
    register_defense,
    sample_applicable_pair,
    temporary_registrations,
)
from repro.reports.profiles import PROFILES
from repro.scan.oracle import ScanResponse

import random

QUICK = PROFILES["quick"]


def canonical(result) -> str:
    return json.dumps(result, sort_keys=True, separators=(",", ":"))


class TestSampling:
    def test_sample_config_is_deterministic_and_in_bounds(self):
        a = sample_config(random.Random(5))
        b = sample_config(random.Random(5))
        assert a == b
        assert SAMPLE_FLOP_RANGE[0] <= a.n_flops <= SAMPLE_FLOP_RANGE[1]

    def test_config_dict_round_trip(self):
        config = sample_config(random.Random(11))
        assert config_from_dict(config_to_dict(config)) == config

    def test_sample_applicable_pair_is_deterministic_and_valid(self):
        a = sample_applicable_pair(random.Random(3))
        assert a == sample_applicable_pair(random.Random(3))
        attack, defense = a
        assert is_applicable(get_attack(attack), get_defense(defense))

    def test_trial_params_depend_on_seed_and_index(self):
        p0 = sample_trial_params(0, 0)
        assert p0 == sample_trial_params(0, 0)
        assert p0 != sample_trial_params(0, 1)
        assert p0 != sample_trial_params(1, 0)

    def test_specs_are_flat_and_hash_stable(self):
        specs = fuzz_trial_specs(QUICK, 3, 42)
        again = fuzz_trial_specs(QUICK, 3, 42)
        assert [s.spec_hash for s in specs] == [s.spec_hash for s in again]
        for spec in specs:
            assert spec.experiment == "fuzz"
            json.dumps(spec.params)  # flat and JSON-safe


class TestFuzzCell:
    def test_cell_is_a_pure_function_of_its_params(self):
        params = sample_trial_params(0, 2)
        a = fuzz_cell(QUICK, **params)
        b = fuzz_cell(QUICK, **params)
        assert canonical(a) == canonical(b)

    def test_cell_result_carries_no_wall_clock(self):
        params = sample_trial_params(0, 0)
        result = fuzz_cell(QUICK, **params)
        assert not any("time" in key or key.endswith("_s") for key in result)

    def test_unbuildable_shape_is_a_skip_not_a_crash(self):
        # scramble on 5 flops with a 1-bit key splits into chains of
        # lengths (3, 2): no equal-length pair exists, so the lock
        # cannot be built at this shape.
        result = fuzz_cell(
            QUICK,
            attack="scramble-sat",
            defense="scramble",
            key_bits=1,
            trial_seed=123,
            n_flops=5,
            n_inputs=2,
            n_outputs=1,
            gates_per_flop=2.0,
            max_fanin=2,
            locality=8,
        )
        assert result["built"] is False
        assert result["skip_reason"]
        assert result["violations"] == []


class TestBuiltinsSatisfyInvariants:
    @pytest.mark.requires_numpy
    def test_quick_campaign_is_green(self):
        report = run_campaign(QUICK, trials=16, seed=0, jobs=1)
        assert report.ok, report.violations
        assert report.n_trials == 16
        assert len(report.outcomes) == 16

    def test_key_equivalence_across_all_defenses(self):
        from repro.bench_suite.generator import generate_circuit
        from repro.matrix.registry import defense_names

        for name in defense_names():
            rng = random.Random(name)  # str seeds are process-stable
            config = GeneratorConfig(n_flops=8, n_inputs=3, n_outputs=2)
            netlist = generate_circuit(config, rng, name=f"eq-{name}")
            spec = get_defense(name)
            key_bits = min(spec.default_key_bits or 4, 4)
            lock = spec.build(netlist, key_bits, rng)
            assert check_key_equivalence(lock, rng) == [], name


class TestCampaignDeterminism:
    def test_serial_equals_parallel_equals_rerun(self):
        a = run_campaign(QUICK, trials=10, seed=3, jobs=1)
        b = run_campaign(QUICK, trials=10, seed=3, jobs=2)
        c = run_campaign(QUICK, trials=10, seed=3, jobs=1)
        keys = lambda r: [canonical(o.result) for o in r.outcomes]  # noqa: E731
        assert keys(a) == keys(b) == keys(c)
        assert campaign_rows(a) == campaign_rows(b) == campaign_rows(c)

    @pytest.mark.requires_numpy
    def test_resume_through_store_is_byte_identical(self, tmp_path):
        from repro.runner.store import ResultStore

        store = ResultStore(tmp_path)
        fresh = run_campaign(QUICK, trials=8, seed=5, jobs=1, store=store)
        cached = run_campaign(QUICK, trials=8, seed=5, jobs=1, store=store)
        assert cached.n_cached == 8 and cached.n_computed == 0
        assert [canonical(o.result) for o in fresh.outcomes] == [
            canonical(o.result) for o in cached.outcomes
        ]
        assert fresh.ok and cached.ok

    def test_time_budget_stops_dispatch_after_a_chunk(self):
        report = run_campaign(
            QUICK, trials=20, seed=1, jobs=1, time_budget_s=0.0
        )
        assert 0 < len(report.outcomes) < 20
        assert report.n_not_run == 20 - len(report.outcomes)
        # The run count is the dispatched count, never a negative
        # double-subtraction of the not-run tail.
        assert f"{len(report.outcomes)}/20 trial(s) run" in report.summary()


class _LyingAttack:
    """Claims success with an all-ones key and a forged verified bit."""

    @staticmethod
    def run(lock, *, profile, timeout_s):
        return AttackOutcome(
            success=True,
            recovered_key=[1] * int(getattr(lock, "key_bits", 1)),
            iterations=1,
            queries=0,
            runtime_s=0.0,
            verified=True,
            detail="planted",
        )


class _BrokenEffLock(EffStaticLock):
    """EFF whose 'authorized' path corrupts one response bit."""

    def make_oracle(self):
        inner = super().make_oracle()

        class _Corrupting:
            def __init__(self, oracle):
                self._oracle = oracle
                self.query_count = 0

            def __getattr__(self, name):
                return getattr(self._oracle, name)

            def query(self, *a, **kw):
                self.query_count += 1
                return self._oracle.query(*a, **kw)

            def unlocked_query(self, *a, **kw):
                response = self._oracle.unlocked_query(*a, **kw)
                flipped = list(response.scan_out)
                flipped[0] ^= 1
                return ScanResponse(
                    scan_out=flipped,
                    primary_outputs=response.primary_outputs,
                )

        return _Corrupting(inner)


def _broken_eff_factory(netlist, key_bits, rng):
    lock = lock_with_eff(netlist, key_bits, rng)
    return _BrokenEffLock(
        netlist=lock.netlist, spec=lock.spec, secret_key=lock.secret_key
    )


def _crashing_attack(lock, *, profile, timeout_s):
    raise RuntimeError("planted crash")


class TestPlantedBugsAreCaught:
    def _campaign_with(self, register, trials=24, seed=7, **kwargs):
        with temporary_registrations():
            register()
            return run_campaign(
                QUICK, trials=trials, seed=seed, jobs=1, **kwargs
            )

    def test_lying_attack_fails_attack_replay(self, tmp_path):
        corpus = tmp_path / "corpus"
        report = self._campaign_with(
            lambda: register_attack(
                "liar", _LyingAttack.run, applicable_to=("eff", "effdyn")
            ),
            corpus_dir=str(corpus),
        )
        liar_violations = [
            v for v in report.violations if v["trial"]["attack"] == "liar"
        ]
        assert liar_violations
        assert all(
            v["invariant"] == ATTACK_REPLAY for v in liar_violations
        )
        # Shrunk trials are no larger than the originals, floors hold.
        for violation in liar_violations:
            shrunk, original = violation["shrunk_trial"], violation["trial"]
            for name, floor in PARAM_FLOORS.items():
                assert floor <= shrunk[name] <= original[name]
        # Corpus entries exist and replay to the same failure.
        entries = load_corpus(corpus)
        assert entries
        with temporary_registrations():
            register_attack(
                "liar", _LyingAttack.run, applicable_to=("eff", "effdyn")
            )
            for _path, entry in entries:
                if entry.original_trial["attack"] == "liar":
                    assert replay_entry(entry) is True

    def test_broken_oracle_fails_key_equivalence(self):
        # Direct cell call (no sampling) so the planted pair is always hit.
        with temporary_registrations():
            register_defense(
                "broken-eff",
                _broken_eff_factory,
                oracle_model="scan-static-broken",
            )
            register_attack(
                "noop-scan",
                lambda lock, *, profile, timeout_s: AttackOutcome(
                    False, None, 0, 0, 0.0, False, "noop"
                ),
                applicable_to=("broken-eff",),
            )
            result = fuzz_cell(
                QUICK,
                attack="noop-scan",
                defense="broken-eff",
                key_bits=3,
                trial_seed=77,
                n_flops=8,
                n_inputs=3,
                n_outputs=2,
                gates_per_flop=2.0,
                max_fanin=3,
                locality=8,
            )
        assert result["violations"]
        assert all(
            v["invariant"] == KEY_EQUIVALENCE for v in result["violations"]
        )

    def test_crashing_attack_is_a_crash_violation_and_shrinks(self, tmp_path):
        corpus = tmp_path / "corpus"
        report = self._campaign_with(
            lambda: register_attack(
                "boom", _crashing_attack, applicable_to=("eff", "effdyn")
            ),
            corpus_dir=str(corpus),
        )
        crashes = [v for v in report.violations if v["invariant"] == CRASH]
        assert crashes
        with temporary_registrations():
            register_attack(
                "boom", _crashing_attack, applicable_to=("eff", "effdyn")
            )
            for violation in crashes:
                assert trial_fails(violation["shrunk_trial"], CRASH, QUICK)

    @pytest.mark.requires_numpy
    def test_double_violations_share_one_shrink_and_corpus_entry(
        self, tmp_path
    ):
        # success=True + verified=False yields TWO attack-replay
        # violations from one trial (missing verified bit, diverging
        # key); they must share one shrink and one corpus file.
        def lying_unverified(lock, *, profile, timeout_s):
            return AttackOutcome(
                success=True,
                recovered_key=[1] * int(getattr(lock, "key_bits", 1)),
                iterations=1,
                queries=0,
                runtime_s=0.0,
                verified=False,
                detail="planted",
            )

        corpus = tmp_path / "corpus"
        with temporary_registrations():
            register_attack(
                "liar2", lying_unverified, applicable_to=("eff", "effdyn")
            )
            report = run_campaign(
                QUICK, trials=24, seed=7, jobs=1, corpus_dir=str(corpus)
            )
        groups: dict[int, list] = {}
        for violation in report.violations:
            if violation["trial"]["attack"] == "liar2":
                groups.setdefault(violation["index"], []).append(violation)
        assert groups
        assert any(len(g) >= 2 for g in groups.values())
        for group in groups.values():
            assert len({v["corpus_path"] for v in group}) == 1
            assert len({canonical(v["shrunk_trial"]) for v in group}) == 1
        entries = load_corpus(corpus)
        assert len(entries) == len(groups)  # one file per (trial, invariant)
        by_index = {e.meta["index"]: e for _p, e in entries}
        for index, group in groups.items():
            if len(group) >= 2:
                assert "; " in by_index[index].detail

    def test_nondeterministic_cell_fails_exec_stability(self, monkeypatch):
        from repro.reports import cells

        calls = {"n": 0}

        def flaky_cell(profile, **params):
            calls["n"] += 1
            return {"tick": calls["n"], "violations": []}

        monkeypatch.setitem(cells.CELL_RUNNERS, "fuzz", flaky_cell)
        report = run_campaign(
            QUICK, trials=2, seed=0, jobs=1, stability_every=1
        )
        assert any(
            v["invariant"] == EXEC_STABILITY for v in report.violations
        )

    def test_rerun_crash_is_a_violation_not_an_abort(self, monkeypatch):
        from repro.reports import cells

        calls = {"n": 0}

        def crash_on_rerun(profile, **params):
            calls["n"] += 1
            if calls["n"] > 1:  # scheduler run succeeds, probe rerun dies
                raise RuntimeError("nondeterministic crash")
            return {"violations": []}

        monkeypatch.setitem(cells.CELL_RUNNERS, "fuzz", crash_on_rerun)
        report = run_campaign(
            QUICK, trials=1, seed=0, jobs=1, stability_every=1
        )
        stability = [
            v
            for v in report.violations
            if v["invariant"] == EXEC_STABILITY
        ]
        assert stability
        assert "raised although" in stability[0]["detail"]


class TestShrinker:
    def test_candidates_are_deterministic_and_smaller(self):
        params = sample_trial_params(0, 4)
        first = list(candidate_reductions(params))
        assert first == list(candidate_reductions(params))
        for candidate in first:
            assert candidate.keys() == params.keys()
            changed = [
                k for k in params if candidate[k] != params[k]
            ]
            assert len(changed) == 1
            assert candidate[changed[0]] < params[changed[0]]

    def test_floors_are_never_crossed(self):
        params = dict(
            sample_trial_params(0, 4),
            n_flops=3,
            key_bits=1,
            n_inputs=1,
            n_outputs=1,
            max_fanin=2,
            locality=4,
            gates_per_flop=1.0,
        )
        assert list(candidate_reductions(params)) == []

    def test_shrink_of_a_healthy_trial_returns_it_unchanged(self):
        params = sample_trial_params(0, 2)
        shrunk, evals = shrink_trial(
            params, ATTACK_REPLAY, QUICK, max_evals=6
        )
        assert shrunk == params
        assert evals <= 6


class TestCorpus:
    def _entry(self, **overrides):
        trial = sample_trial_params(0, 0)
        fields = dict(
            invariant=ATTACK_REPLAY,
            detail="test entry",
            trial=trial,
            original_trial=trial,
            profile={"name": "quick"},
            shrink_evals=3,
        )
        fields.update(overrides)
        return CrashEntry(**fields)

    def test_write_load_round_trip(self, tmp_path):
        entry = self._entry()
        path = write_entry(tmp_path, entry)
        assert path == entry_path(tmp_path, entry)
        assert path.parent.name == ATTACK_REPLAY
        [(loaded_path, loaded)] = load_corpus(tmp_path)
        assert loaded_path == path
        assert loaded.to_dict() == entry.to_dict()

    def test_rewrite_is_byte_identical(self, tmp_path):
        entry = self._entry()
        path = write_entry(tmp_path, entry)
        first = path.read_bytes()
        write_entry(tmp_path, entry)
        assert path.read_bytes() == first

    def test_missing_root_is_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []

    def test_malformed_entry_raises_corpus_error(self, tmp_path):
        bad = tmp_path / ATTACK_REPLAY / "0.json"
        bad.parent.mkdir(parents=True)
        bad.write_text("[1, 2]")
        with pytest.raises(CorpusError):
            load_corpus(tmp_path)
        bad.write_text('{"invariant": "x"}')
        with pytest.raises(CorpusError):
            load_corpus(tmp_path)

    def test_stability_entries_are_not_replayable(self):
        entry = self._entry(invariant=EXEC_STABILITY)
        assert entry.replayable is False
        assert replay_entry(entry) is None


class TestCampaignReportSurface:
    def test_summary_mentions_the_interesting_counts(self):
        report = CampaignReport(seed=0, n_trials=4, n_not_run=2)
        text = report.summary()
        assert "2 not run" in text and "0 violation(s)" in text

    def test_rows_group_by_pair(self):
        report = run_campaign(QUICK, trials=12, seed=0, jobs=1)
        rows = campaign_rows(report)
        assert rows == sorted(rows)
        assert sum(r[2] for r in rows) == 12
        assert sum(r[3] for r in rows) == report.n_skipped_builds
