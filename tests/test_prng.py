"""Tests for the LFSR/PRNG substrate: concrete, matrix, symbolic, netlist."""

import random

import pytest

np = pytest.importorskip("numpy")  # whole-module skip on the numpy-less leg

from repro.netlist.netlist import Netlist
from repro.prng.lfsr import FibonacciLfsr, GaloisLfsr, Keystream
from repro.prng.matrix import companion_matrix, lfsr_state_after
from repro.prng.nonlinear import NonlinearPrng
from repro.prng.polynomials import PRIMITIVE_TAPS, default_taps, is_maximal_length
from repro.prng.symbolic import LfsrUnrolling, SymbolicLfsr
from repro.sim.logicsim import evaluate
from repro.util.bitvec import random_bits


class TestPolynomials:
    @pytest.mark.parametrize("width", sorted(w for w in PRIMITIVE_TAPS if w <= 16))
    def test_small_table_entries_are_maximal_length(self, width):
        assert is_maximal_length(width, PRIMITIVE_TAPS[width])

    def test_default_taps_tap_final_stage(self):
        for width in [2, 3, 7, 33, 50, 100, 128, 368, 400]:
            taps = default_taps(width)
            assert (width - 1) in taps
            assert all(0 <= t < width for t in taps)

    def test_default_taps_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            default_taps(1)


class TestFibonacciLfsr:
    def test_seed_width_mismatch(self):
        with pytest.raises(ValueError):
            FibonacciLfsr(width=4, seed_bits=[1, 0, 0])

    def test_final_stage_must_be_tapped(self):
        with pytest.raises(ValueError):
            FibonacciLfsr(width=4, seed_bits=[1, 0, 0, 0], taps=(0, 1))

    def test_non_bit_seed_rejected(self):
        with pytest.raises(ValueError):
            FibonacciLfsr(width=3, seed_bits=[1, 0, 2])

    def test_reset_restores_seed(self):
        lfsr = FibonacciLfsr(width=5, seed_bits=[1, 0, 1, 1, 0])
        for _ in range(7):
            lfsr.advance()
        lfsr.reset()
        assert lfsr.peek() == [1, 0, 1, 1, 0]

    def test_update_semantics(self):
        # Width 3, taps (1, 2): new bit = s1 ^ s2, bits shift up.
        lfsr = FibonacciLfsr(width=3, seed_bits=[1, 0, 1], taps=(1, 2))
        assert lfsr.advance() == [1, 1, 0]  # new = 0^1=1
        assert lfsr.advance() == [1, 1, 1]

    def test_zero_seed_is_fixed_point(self):
        lfsr = FibonacciLfsr(width=4, seed_bits=[0, 0, 0, 0])
        assert lfsr.advance() == [0, 0, 0, 0]


class TestGaloisLfsr:
    def test_update_is_a_bijection_on_nonzero_states(self):
        """Every nonzero 4-bit state must recur (no state-space collapse)."""
        seen_orbits = 0
        visited: set[tuple[int, ...]] = set()
        for value in range(1, 16):
            seed = [(value >> i) & 1 for i in range(4)]
            if tuple(seed) in visited:
                continue
            lfsr = GaloisLfsr(width=4, seed_bits=seed)
            start = tuple(lfsr.peek())
            period = 0
            while True:
                state = tuple(lfsr.advance())
                period += 1
                visited.add(state)
                assert state != (0, 0, 0, 0)
                if state == start:
                    break
                assert period <= 15
            seen_orbits += 1
        assert len(visited) == 15

    def test_reset(self):
        lfsr = GaloisLfsr(width=4, seed_bits=[1, 1, 0, 0])
        lfsr.advance()
        lfsr.reset()
        assert lfsr.peek() == [1, 1, 0, 0]


class TestMatrixView:
    @pytest.mark.parametrize("width", [3, 5, 8, 16])
    def test_matrix_power_matches_iteration(self, width):
        rng = random.Random(width)
        taps = default_taps(width)
        seed = random_bits(width, rng)
        lfsr = FibonacciLfsr(width=width, seed_bits=seed, taps=taps)
        state = lfsr.peek()
        for steps in range(1, 20):
            state = lfsr.advance()
            assert lfsr_state_after(width, taps, seed, steps) == state

    def test_companion_matrix_shape(self):
        mat = companion_matrix(4, (1, 3))
        assert mat.shape == (4, 4)
        assert mat.data[0, 1] == 1 and mat.data[0, 3] == 1
        assert mat.data[2, 1] == 1  # shift row


class TestKeystream:
    def test_first_key_is_one_update_from_seed(self):
        seed = [1, 0, 1, 0, 1]
        lfsr = FibonacciLfsr(width=5, seed_bits=seed)
        expected = FibonacciLfsr(width=5, seed_bits=seed).advance()
        stream = Keystream(lfsr)
        assert stream.next_key() == expected

    def test_restart_replays(self):
        stream = Keystream(FibonacciLfsr(width=6, seed_bits=[1, 0, 0, 1, 1, 0]))
        first_run = [stream.next_key() for _ in range(9)]
        stream.restart()
        second_run = [stream.next_key() for _ in range(9)]
        assert first_run == second_run

    def test_random_access_matches_stream(self):
        stream = Keystream(FibonacciLfsr(width=5, seed_bits=[0, 1, 1, 0, 1]))
        sequential = [stream.next_key() for _ in range(12)]
        for t in [0, 3, 11]:
            assert stream.key_for_cycle(t) == sequential[t]


class TestSymbolicLfsr:
    @pytest.mark.parametrize("width", [4, 8, 13])
    def test_symbolic_rows_reproduce_concrete_keystream(self, width):
        rng = random.Random(width * 7)
        taps = default_taps(width)
        seed = random_bits(width, rng)
        sym = SymbolicLfsr(width=width, taps=taps)
        stream = Keystream(FibonacciLfsr(width=width, seed_bits=seed, taps=taps))
        seed_vec = np.array(seed, dtype=np.uint8)
        for t in range(25):
            concrete = stream.next_key()
            rows = sym.rows_for_cycle(t)
            predicted = list((rows @ seed_vec) & 1)
            assert [int(x) for x in predicted] == concrete

    def test_backward_random_access(self):
        sym = SymbolicLfsr(width=5, taps=default_taps(5))
        forward = sym.rows_for_cycle(10).copy()
        early = sym.rows_for_cycle(2)  # random access backwards
        again = sym.rows_for_cycle(10)
        assert np.array_equal(forward, again)
        assert early.shape == (5, 5)


class TestLfsrUnrolling:
    @pytest.mark.parametrize("width", [3, 6, 11])
    def test_unrolled_netlist_computes_the_keystream(self, width):
        rng = random.Random(width)
        taps = default_taps(width)
        seed = random_bits(width, rng)

        netlist = Netlist("lfsr")
        seed_nets = [f"s{j}" for j in range(width)]
        for net in seed_nets:
            netlist.add_input(net)
        unrolling = LfsrUnrolling(netlist, seed_nets, taps)

        horizon = 20
        nets = {
            (t, i): unrolling.key_net(t, i)
            for t in range(horizon)
            for i in range(width)
        }
        values = evaluate(netlist, dict(zip(seed_nets, seed)))
        stream = Keystream(FibonacciLfsr(width=width, seed_bits=seed, taps=taps))
        for t in range(horizon):
            concrete = stream.next_key()
            assert [values[nets[(t, i)]] for i in range(width)] == concrete

    def test_one_gate_per_referenced_update(self):
        netlist = Netlist("lfsr")
        seed_nets = ["s0", "s1", "s2", "s3"]
        for net in seed_nets:
            netlist.add_input(net)
        unrolling = LfsrUnrolling(netlist, seed_nets, default_taps(4))
        unrolling.key_net(9, 0)  # laziness: only reachable updates created
        assert unrolling.n_gates_created <= 10
        for t in range(10):
            for i in range(4):
                unrolling.key_net(t, i)
        # Full coverage of cycles 0..9 needs exactly updates 1..10.
        assert unrolling.n_gates_created == 10


class TestNonlinearPrng:
    def test_keystream_is_not_affine_in_the_seed(self):
        """f(s1) ^ f(s2) ^ f(s1^s2) != f(0) for some seeds => nonlinear."""
        width = 8
        taps = default_taps(width)
        rng = random.Random(2)
        found_nonlinear = False
        for _ in range(40):
            s1 = random_bits(width, rng)
            s2 = random_bits(width, rng)
            s3 = [a ^ b for a, b in zip(s1, s2)]
            zero = [0] * width
            outs = []
            for seed in (s1, s2, s3, zero):
                prng = NonlinearPrng(width=width, seed_bits=seed, taps=taps)
                outs.append(prng.next_key())
            combined = [a ^ b ^ c ^ d for a, b, c, d in zip(*outs)]
            if any(combined):
                found_nonlinear = True
                break
        assert found_nonlinear

    def test_restart_replays(self):
        prng = NonlinearPrng(width=6, seed_bits=[1, 0, 1, 1, 0, 0])
        first = [prng.next_key() for _ in range(5)]
        prng.restart()
        assert [prng.next_key() for _ in range(5)] == first

    def test_key_for_cycle_matches_stream(self):
        prng = NonlinearPrng(width=6, seed_bits=[1, 1, 0, 1, 0, 0])
        stream = [prng.next_key() for _ in range(8)]
        assert prng.key_for_cycle(5) == stream[5]
