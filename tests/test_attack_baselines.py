"""Tests for the baseline attacks: ScanSAT, ScanSAT-dyn (DOS), shift-and-
leak (DFS), and the brute-force refinement helper."""

import random

import pytest

from repro.attack.bruteforce import refine_candidates_by_replay
from repro.attack.scansat import scansat_attack_on_lock
from repro.attack.scansat_dyn import scansat_dyn_attack_on_lock
from repro.attack.shift_and_leak import shift_and_leak_on_lock
from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.bench_suite.iscas import s27_netlist
from repro.core.modeling import build_combinational_model
from repro.locking.dfs import lock_with_dfs
from repro.locking.dos import lock_with_dos
from repro.locking.eff import lock_with_eff
from repro.locking.effdyn import lock_with_effdyn


def synthetic(seed: int, n_flops: int = 8):
    rng = random.Random(seed)
    config = GeneratorConfig(n_flops=n_flops, n_inputs=4, n_outputs=3)
    return generate_circuit(config, rng, name=f"b{seed}"), rng


class TestScanSatStatic:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_recovers_static_key(self, seed):
        netlist, rng = synthetic(seed)
        lock = lock_with_eff(netlist, key_bits=4, rng=rng)
        result = scansat_attack_on_lock(lock)
        assert result.success
        assert result.recovered_key == list(lock.secret_key)

    def test_s27(self):
        netlist = s27_netlist()
        lock = lock_with_eff(netlist, key_bits=2, rng=random.Random(3))
        result = scansat_attack_on_lock(lock)
        assert result.success
        assert result.recovered_key == list(lock.secret_key)


class TestScanSatDyn:
    @pytest.mark.parametrize("period", [1, 3])
    @pytest.mark.requires_numpy
    def test_recovers_dos_seed(self, period):
        netlist, rng = synthetic(10 + period)
        lock = lock_with_dos(netlist, key_bits=4, rng=rng, period_p=period)
        result = scansat_dyn_attack_on_lock(lock)
        assert result.success
        # The recovered seed must generate the same first-update key; for
        # a full-rank one-step map this pins the seed itself.
        assert result.recovered_seed == list(lock.seed)


class TestShiftAndLeak:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_recovers_dfs_logic_key(self, seed):
        netlist, rng = synthetic(20 + seed, n_flops=6)
        lock = lock_with_dfs(netlist, key_bits=5, rng=rng)
        result = shift_and_leak_on_lock(lock)
        assert result.success
        # Any returned candidate must be functionally equivalent to the
        # secret key on the observable outputs; the secret key itself must
        # be consistent with the learned constraints.
        assert list(lock.rll.secret_key) in result.key_candidates


class TestBruteForceRefinement:
    @pytest.mark.requires_numpy
    def test_filters_wrong_seeds(self):
        netlist, rng = synthetic(30)
        lock = lock_with_effdyn(netlist, key_bits=4, rng=rng)
        oracle = lock.make_oracle()
        model = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, lock.key_bits
        )

        def replay(scan_in, pi):
            response = oracle.query(scan_in, pi)
            return list(response.scan_out) + list(response.primary_outputs)

        true_seed = list(lock.seed)
        wrong = [1 - b for b in true_seed]
        result = refine_candidates_by_replay(
            model,
            [wrong, true_seed],
            replay,
            random.Random(1),
            n_patterns=12,
            stop_at_one=False,
        )
        assert result.survivors == [true_seed]
        assert result.n_candidates_in == 2

    @pytest.mark.requires_numpy
    def test_stop_at_one(self):
        netlist, rng = synthetic(31)
        lock = lock_with_effdyn(netlist, key_bits=4, rng=rng)
        oracle = lock.make_oracle()
        model = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, lock.key_bits
        )

        def replay(scan_in, pi):
            response = oracle.query(scan_in, pi)
            return list(response.scan_out) + list(response.primary_outputs)

        result = refine_candidates_by_replay(
            model, [list(lock.seed)], replay, random.Random(2)
        )
        assert result.survivors == [list(lock.seed)]
        assert result.n_patterns_used == 0  # single candidate, early stop

    @pytest.mark.requires_numpy
    def test_empty_candidates(self):
        netlist, rng = synthetic(32)
        lock = lock_with_effdyn(netlist, key_bits=4, rng=rng)
        model = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, lock.key_bits
        )
        result = refine_candidates_by_replay(
            model, [], lambda a, b: [], random.Random(3)
        )
        assert result.survivors == []
