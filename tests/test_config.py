"""Tests for declarative experiment config profiles (repro.config).

The contract pinned here:

* every validation failure is tagged with its precise dotted key path
  (``fuzz.concurrency``, not "bad value somewhere");
* strict mode rejects unknown keys/sections, non-strict ignores them
  but still checks the known ones;
* resolution order is explicit CLI flag > config file > built-in
  default, with flag-vs-file conflicts recorded as overrides;
* the shipped example profiles in ``examples/configs/`` all pass
  ``config check --strict``;
* the 3.10 fallback TOML parser agrees with :mod:`tomllib` on every
  shipped profile.
"""

import argparse
import json
from pathlib import Path

import pytest

from repro.config import (
    COMMAND_MAPS,
    ConfigError,
    SCHEMA,
    _parse_toml_minimal,
    apply_config,
    check_config,
    load_and_check,
    load_config_file,
    parse_duration,
)
from repro.cli import build_parser, main

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples" / "configs"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.toml"))


def issue_paths(issues):
    return [issue.path for issue in issues]


class TestSchemaValidation:
    def test_valid_config_flattens_to_dotted_values(self):
        values, issues = check_config(
            {
                "profile": "quick",
                "opt_level": 1,
                "fuzz": {"trials": 50, "seed": 3},
                "cache": {"resume": False},
            }
        )
        assert not issues
        assert values == {
            "profile": "quick",
            "opt_level": 1,
            "fuzz.trials": 50,
            "fuzz.seed": 3,
            "cache.resume": False,
        }

    def test_unknown_key_rejected_with_dotted_path(self):
        _, issues = check_config({"farm": {"bogus": 1}}, strict=True)
        assert issue_paths(issues) == ["farm.bogus"]
        assert "unknown key" in issues[0].message

    def test_unknown_section_rejected(self):
        _, issues = check_config({"frm": {"seed": 1}}, strict=True)
        assert issue_paths(issues) == ["frm"]
        assert "unknown section" in issues[0].message

    def test_non_strict_ignores_unknown_but_checks_known(self):
        values, issues = check_config(
            {"farm": {"bogus": 1, "seed": -1}}, strict=False
        )
        assert issue_paths(issues) == ["farm.seed"]
        assert "bogus" not in str(values)

    def test_wrong_type_names_the_path(self):
        _, issues = check_config({"fuzz": {"trials": "lots"}})
        assert issue_paths(issues) == ["fuzz.trials"]
        assert "expected an integer" in issues[0].message

    def test_bool_is_not_an_integer(self):
        # isinstance(True, int) holds in Python; the schema must not
        # let a stray `trials = true` slip through as 1.
        _, issues = check_config({"fuzz": {"trials": True}})
        assert issue_paths(issues) == ["fuzz.trials"]

    def test_out_of_range_seed(self):
        _, issues = check_config({"fuzz": {"seed": -1}})
        assert issue_paths(issues) == ["fuzz.seed"]
        assert "between" in issues[0].message

    def test_out_of_range_concurrency(self):
        _, issues = check_config({"fuzz": {"concurrency": -3}})
        assert issue_paths(issues) == ["fuzz.concurrency"]
        _, issues = check_config({"farm": {"concurrency": 100_000}})
        assert issue_paths(issues) == ["farm.concurrency"]

    def test_round_trials_floor(self):
        _, issues = check_config({"farm": {"round_trials": 0}})
        assert issue_paths(issues) == ["farm.round_trials"]

    def test_policy_checks_name_registry_members(self):
        _, issues = check_config(
            {
                "profile": "huge",
                "cache": {"backend": "mongodb"},
                "filters": {"attacks": ["scansat", "nosuch"]},
            }
        )
        assert sorted(issue_paths(issues)) == [
            "cache.backend",
            "filters.attacks",
            "profile",
        ]
        by_path = {issue.path: issue.message for issue in issues}
        assert "nosuch" in by_path["filters.attacks"]
        assert "scansat" in by_path["filters.attacks"]  # the known list

    def test_section_given_a_scalar_value(self):
        _, issues = check_config({"cache": 5})
        assert issue_paths(issues) == ["cache"]
        assert "table" in issues[0].message

    def test_nested_tables_rejected(self):
        _, issues = check_config({"fuzz": {"deep": {"trials": 1}}})
        assert issue_paths(issues) == ["fuzz.deep"]

    def test_all_issues_collected_not_just_first(self):
        _, issues = check_config(
            {"fuzz": {"trials": "x", "seed": -1, "concurrency": 9999}}
        )
        assert sorted(issue_paths(issues)) == [
            "fuzz.concurrency",
            "fuzz.seed",
            "fuzz.trials",
        ]

    def test_non_table_root_rejected(self):
        _, issues = check_config([1, 2])
        assert issue_paths(issues) == ["<root>"]


class TestLoading:
    def test_json_config_loads(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"fuzz": {"trials": 7}}))
        assert load_config_file(path) == {"fuzz": {"trials": 7}}
        resolved = load_and_check(path)
        assert resolved.values == {"fuzz.trials": 7}

    def test_toml_config_loads(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text('profile = "quick"\n[fuzz]\ntrials = 7\n')
        assert load_config_file(path) == {
            "profile": "quick",
            "fuzz": {"trials": 7},
        }

    def test_unsupported_suffix_raises(self, tmp_path):
        path = tmp_path / "c.yaml"
        path.write_text("a: 1\n")
        with pytest.raises(ConfigError) as excinfo:
            load_config_file(path)
        assert excinfo.value.issues[0].path == "<parse>"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigError) as excinfo:
            load_config_file(tmp_path / "none.toml")
        assert excinfo.value.issues[0].path == "<file>"

    def test_load_and_check_raises_with_paths(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text("[fuzz]\nseed = -1\n")
        with pytest.raises(ConfigError) as excinfo:
            load_and_check(path)
        assert "fuzz.seed" in str(excinfo.value)


class TestMinimalTomlParser:
    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.name for p in EXAMPLES]
    )
    def test_fallback_agrees_with_tomllib_on_examples(self, path):
        tomllib = pytest.importorskip("tomllib")
        text = path.read_text()
        assert _parse_toml_minimal(text) == tomllib.loads(text)

    def test_values_strings_bools_numbers_arrays(self):
        data = _parse_toml_minimal(
            "# header comment\n"
            'name = "x"  \n'
            "flag = true\n"
            "n = 3  # trailing comment\n"
            "f = 1.5\n"
            "[filters]\n"
            'benchmarks = ["s5378", "s13207"]\n'
            "empty = []\n"
        )
        assert data == {
            "name": "x",
            "flag": True,
            "n": 3,
            "f": 1.5,
            "filters": {"benchmarks": ["s5378", "s13207"], "empty": []},
        }

    @pytest.mark.parametrize(
        "bad",
        [
            "key\n",  # no '='
            "a = \n",  # missing value
            'a = "unterminated\n',
            "a = [1, 2\n",  # unterminated array
            "[sec.dotted]\n",  # dotted sections unsupported
            "a.b = 1\n",  # dotted keys unsupported
        ],
    )
    def test_malformed_lines_rejected_loudly(self, bad):
        with pytest.raises(ValueError, match="line 1"):
            _parse_toml_minimal(bad)


class TestShippedExamples:
    def test_examples_exist(self):
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.name for p in EXAMPLES]
    )
    def test_example_passes_strict_check(self, path):
        resolved = load_and_check(path, strict=True)
        assert resolved.values  # non-empty: the profile says something

    def test_cli_check_strict_accepts_examples(self, capsys):
        assert (
            main(
                ["config", "check", "--strict"]
                + [str(path) for path in EXAMPLES]
            )
            == 0
        )
        out = capsys.readouterr().out
        for path in EXAMPLES:
            assert f"{path}: OK" in out


class TestCliCheck:
    def test_invalid_file_exits_1_with_dotted_paths(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text(
            "[fuzz]\nconcurrency = -3\ntrails = 500\n[farm]\nseed = -1\n"
        )
        assert main(["config", "check", "--strict", str(path)]) == 1
        out = capsys.readouterr().out
        assert f"{path}: fuzz.concurrency:" in out
        assert f"{path}: fuzz.trails: unknown key" in out
        assert f"{path}: farm.seed:" in out

    def test_non_strict_allows_unknown_keys(self, tmp_path, capsys):
        path = tmp_path / "fwd.toml"
        path.write_text("[fuzz]\ntrials = 5\nfuture_knob = 1\n")
        assert main(["config", "check", str(path)]) == 0
        assert main(["config", "check", "--strict", str(path)]) == 1

    def test_parse_error_exits_1(self, tmp_path, capsys):
        path = tmp_path / "broken.toml"
        path.write_text("[fuzz\ntrials = 5\n")
        assert main(["config", "check", str(path)]) == 1
        assert "<parse>" in capsys.readouterr().out

    def test_show_prints_flat_values(self, tmp_path, capsys):
        path = tmp_path / "c.toml"
        path.write_text('profile = "quick"\n[fuzz]\ntrials = 9\n')
        assert main(["config", "show", str(path)]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown == {"profile": "quick", "fuzz.trials": 9}


def _fuzz_namespace(**overrides):
    """A namespace shaped like parsed ``dynunlock fuzz`` args."""
    ns = argparse.Namespace(
        config=None,
        profile=None,
        opt_level=None,
        resume=None,
        cache_dir=None,
        cache_backend=None,
        jobs=None,
        trials=None,
        seed=None,
        time_budget=None,
        corpus=None,
        shrink_limit=None,
    )
    for key, value in overrides.items():
        setattr(ns, key, value)
    return ns


class TestResolution:
    def test_defaults_applied_without_a_file(self):
        ns = _fuzz_namespace()
        assert apply_config(ns, "fuzz") is None
        assert ns.trials == 100 and ns.seed == 0 and ns.jobs == 1
        assert ns.resume is True and ns.profile is None

    def test_file_values_fill_unset_flags(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text(
            'profile = "quick"\n[fuzz]\ntrials = 12\nconcurrency = 2\n'
        )
        ns = _fuzz_namespace(config=str(path))
        provenance = apply_config(ns, "fuzz")
        assert ns.trials == 12 and ns.jobs == 2 and ns.profile == "quick"
        assert ns.seed == 0  # untouched by the file -> built-in default
        assert provenance["path"] == str(path)
        assert provenance["overrides"] == []
        assert provenance["values"]["fuzz.trials"] == 12

    def test_explicit_flag_overrides_file_and_is_recorded(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text("[fuzz]\ntrials = 12\nseed = 5\n")
        warnings = []
        ns = _fuzz_namespace(config=str(path), trials=3)
        provenance = apply_config(ns, "fuzz", warn=warnings.append)
        assert ns.trials == 3  # the CLI wins
        assert ns.seed == 5  # the file still fills the rest
        assert provenance["overrides"] == ["fuzz.trials"]
        assert any("fuzz.trials" in message for message in warnings)

    def test_flag_equal_to_file_value_is_not_an_override(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text("[fuzz]\ntrials = 12\n")
        ns = _fuzz_namespace(config=str(path), trials=12)
        provenance = apply_config(ns, "fuzz")
        assert provenance["overrides"] == []

    def test_invalid_file_raises_config_error(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text("[fuzz]\nseed = -1\n")
        ns = _fuzz_namespace(config=str(path))
        with pytest.raises(ConfigError, match="fuzz.seed"):
            apply_config(ns, "fuzz")

    def test_grid_command_resolves_filters_and_concurrency(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text(
            "[grid]\nconcurrency = 2\n"
            '[filters]\nbenchmarks = ["s5378", "s13207"]\n'
        )
        args = build_parser().parse_args(["table2", "--config", str(path)])
        apply_config(args, "grid")
        assert args.jobs == 2
        assert args.benchmarks == ["s5378", "s13207"]

    def test_farm_map_covers_attrs_without_flags(self, tmp_path):
        # bias/stability_every/shrink_limit have no farm-run CLI flags;
        # the config/default chain alone must resolve them.
        path = tmp_path / "c.toml"
        path.write_text("[farm]\nbias = 9.0\nstability_every = 0\n")
        args = build_parser().parse_args(
            ["farm", "run", "--config", str(path)]
        )
        apply_config(args, "farm")
        assert args.bias == 9.0
        assert args.stability_every == 0
        assert args.shrink_limit == 8  # built-in default

    def test_command_maps_reference_real_schema_paths(self):
        for command, rows in COMMAND_MAPS.items():
            for _attr, path, _default in rows:
                assert path in SCHEMA, f"{command} maps unknown path {path}"


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,seconds",
        [
            ("90", 90.0),
            ("90s", 90.0),
            ("10m", 600.0),
            ("1h30m", 5400.0),
            ("2.5m", 150.0),
            ("1h", 3600.0),
        ],
    )
    def test_valid(self, text, seconds):
        assert parse_duration(text) == seconds

    @pytest.mark.parametrize("text", ["", "10x", "m", "1hm", "h30"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_duration(text)
