"""Cross-system integration and property-based tests.

These tie multiple subsystems together with randomised (hypothesis-
driven) workloads, asserting the global invariants that make the
reproduction trustworthy:

* protocol oracle == structural gate-level scan simulation;
* attack model(true seed) == oracle, for arbitrary geometry;
* SAT encodings agree with the simulator on whole locked models;
* the DynUnlock pipeline is deterministic given its seeds.
"""

import random

import pytest

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.core.dynunlock import dynunlock
from repro.core.modeling import build_combinational_model
from repro.locking.effdyn import lock_with_effdyn
from repro.sat.solver import CdclSolver
from repro.sat.tseitin import CircuitEncoder
from repro.scan.oracle import ScanOracle
from repro.scan.structural import StructuralScanSimulator, build_scan_netlist
from repro.sim.logicsim import CombinationalSimulator
from repro.util.bitvec import random_bits

SLOW_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_locked_case(seed: int):
    rng = random.Random(seed)
    config = GeneratorConfig(
        n_flops=rng.randint(3, 10),
        n_inputs=rng.randint(2, 4),
        n_outputs=rng.randint(1, 3),
    )
    netlist = generate_circuit(config, rng, name=f"i{seed}")
    key_bits = rng.randint(2, min(6, netlist.n_dffs - 1))
    lock = lock_with_effdyn(netlist, key_bits=key_bits, rng=rng)
    return netlist, lock, rng


class TestOracleConsistencyProperty:
    @SLOW_SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_protocol_equals_structural(self, seed):
        netlist, lock, rng = build_locked_case(seed)
        protocol = ScanOracle(netlist, lock.spec, lock.keystream())
        locked, pins = build_scan_netlist(netlist, lock.spec)
        structural = StructuralScanSimulator(
            locked, pins, lock.spec, lock.keystream(), netlist.inputs
        )
        for _ in range(3):
            pattern = random_bits(netlist.n_dffs, rng)
            pis = random_bits(len(netlist.inputs), rng)
            a = protocol.query(pattern, pis)
            b = structural.query(pattern, pis)
            assert a.scan_out == b.scan_out
            assert a.primary_outputs == b.primary_outputs


class TestModelSoundnessProperty:
    @SLOW_SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @pytest.mark.requires_numpy
    def test_model_with_true_seed_equals_oracle(self, seed):
        netlist, lock, rng = build_locked_case(seed)
        oracle = lock.make_oracle()
        model = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, lock.key_bits
        )
        sim = CombinationalSimulator(model.netlist)
        for _ in range(3):
            pattern = random_bits(netlist.n_dffs, rng)
            pis = random_bits(len(netlist.inputs), rng)
            response = oracle.query(pattern, pis)
            inputs = dict(zip(model.a_inputs, pattern))
            inputs.update(zip(model.pi_inputs, pis))
            inputs.update(zip(model.key_inputs, lock.seed))
            values = sim.run(inputs)
            assert [values[n] for n in model.b_outputs] == response.scan_out

    @SLOW_SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @pytest.mark.requires_numpy
    def test_sat_encoding_of_model_matches_simulation(self, seed):
        """Tseitin(model) under assumptions == direct model evaluation."""
        netlist, lock, rng = build_locked_case(seed)
        model = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, lock.key_bits
        )
        encoder = CircuitEncoder()
        mapping = encoder.encode_netlist(model.netlist)
        solver = CdclSolver(encoder.cnf)
        sim = CombinationalSimulator(model.netlist)
        for _ in range(2):
            bits = {net: rng.randrange(2) for net in model.netlist.inputs}
            assumptions = [
                mapping[net] if value else -mapping[net]
                for net, value in bits.items()
            ]
            result = solver.solve(assumptions=assumptions)
            assert result.satisfiable is True
            values = sim.run(bits)
            for net in model.observed_outputs:
                assert result.model[mapping[net]] == values[net]


class TestPipelineDeterminism:
    @pytest.mark.requires_numpy
    def test_attack_is_reproducible(self):
        netlist, lock, _ = build_locked_case(777)
        result_a = dynunlock(netlist, lock.public_view(), lock.make_oracle())
        result_b = dynunlock(netlist, lock.public_view(), lock.make_oracle())
        assert result_a.success == result_b.success
        assert result_a.recovered_seed == result_b.recovered_seed
        assert result_a.iterations == result_b.iterations
        assert result_a.seed_candidates == result_b.seed_candidates


class TestOverlayXorStructure:
    @SLOW_SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @pytest.mark.requires_numpy
    def test_scan_out_difference_is_pattern_independent(self, seed):
        """For a fixed geometry+seed, (locked XOR clean) scan responses of
        the SAME applied state differ by a constant mask -- linearity of
        the output overlay, the heart of the modeling step."""
        netlist, lock, rng = build_locked_case(seed)
        oracle = lock.make_oracle()
        from repro.core.analysis import overlay_matrices
        import numpy as np

        m_in, m_out = overlay_matrices(
            lock.spec, lock.lfsr_taps, lock.key_bits
        )
        seed_vec = np.array(lock.seed, dtype=np.uint8)
        in_mask = list((m_in.data @ seed_vec) & 1)
        out_mask = list((m_out.data @ seed_vec) & 1)

        for _ in range(3):
            pattern = random_bits(netlist.n_dffs, rng)
            pis = random_bits(len(netlist.inputs), rng)
            locked = oracle.query(pattern, pis)
            # Clean query of the *scrambled-in* state: a' = a ^ in_mask.
            applied = [a ^ m for a, m in zip(pattern, in_mask)]
            clean = oracle.unlocked_query(applied, pis)
            predicted = [c ^ m for c, m in zip(clean.scan_out, out_mask)]
            assert predicted == locked.scan_out
