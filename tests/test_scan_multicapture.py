"""Focused tests for the multi-capture protocol and the restart path.

The paper's restart refinement builds "a combinational locked circuit
for a new capture cycle and carr[ies] over the seed information"; these
tests pin the protocol pieces that path depends on.
"""

import random

import pytest

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.core.modeling import build_combinational_model
from repro.locking.effdyn import lock_with_effdyn
from repro.sim.logicsim import CombinationalSimulator
from repro.sim.seqsim import SequentialSimulator
from repro.util.bitvec import random_bits


@pytest.fixture(scope="module")
def case():
    rng = random.Random(0xCAFE)
    config = GeneratorConfig(n_flops=7, n_inputs=3, n_outputs=2)
    netlist = generate_circuit(config, rng, name="mcap")
    lock = lock_with_effdyn(netlist, key_bits=3, rng=rng)
    return netlist, lock, rng


class TestMultiCaptureProtocol:
    @pytest.mark.parametrize("n_captures", [1, 2, 3, 4])
    def test_unlocked_multicapture_equals_repeated_step(self, case, n_captures):
        netlist, lock, rng = case
        oracle = lock.make_oracle()
        pattern = random_bits(7, rng)
        pis = random_bits(3, rng)
        response = oracle.unlocked_query(pattern, pis, n_captures=n_captures)
        sim = SequentialSimulator(netlist)
        sim.set_state_vector(pattern)
        for _ in range(n_captures):
            values = sim.step(dict(zip(netlist.inputs, pis)))
        assert response.scan_out == sim.get_state_vector()
        assert response.primary_outputs == [
            values[net] for net in netlist.outputs
        ]

    def test_locked_responses_differ_across_capture_counts(self, case):
        """More captures shift the unload keystream window, so the same
        pattern produces differently-scrambled responses."""
        netlist, lock, rng = case
        oracle = lock.make_oracle()
        pattern = random_bits(7, rng)
        one = oracle.query(pattern, n_captures=1).scan_out
        two = oracle.query(pattern, n_captures=2).scan_out
        # (Could coincide for degenerate seeds; check across patterns.)
        diffs = one != two
        for _ in range(5):
            p = random_bits(7, rng)
            if (
                oracle.query(p, n_captures=1).scan_out
                != oracle.query(p, n_captures=2).scan_out
            ):
                diffs = True
        assert diffs

    @pytest.mark.parametrize("n_captures", [2, 3])
    @pytest.mark.requires_numpy
    def test_model_tracks_multicapture_oracle(self, case, n_captures):
        netlist, lock, rng = case
        oracle = lock.make_oracle()
        model = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, lock.key_bits,
            n_captures=n_captures,
        )
        sim = CombinationalSimulator(model.netlist)
        for _ in range(6):
            pattern = random_bits(7, rng)
            pis = random_bits(3, rng)
            response = oracle.query(pattern, pis, n_captures=n_captures)
            inputs = dict(zip(model.a_inputs, pattern))
            inputs.update(zip(model.pi_inputs, pis))
            inputs.update(zip(model.key_inputs, lock.seed))
            values = sim.run(inputs)
            assert [values[n] for n in model.b_outputs] == response.scan_out
            assert [
                values[n] for n in model.po_outputs
            ] == response.primary_outputs

    @pytest.mark.requires_numpy
    def test_multicapture_model_has_chained_cores(self, case):
        netlist, lock, rng = case
        single = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, lock.key_bits, n_captures=1
        )
        double = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, lock.key_bits, n_captures=2
        )
        assert double.netlist.n_gates > single.netlist.n_gates
        assert any(net.startswith("c1::") for net in double.netlist.gates)
