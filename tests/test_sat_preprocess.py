"""Tests for the CNF preprocessing passes."""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.sat.cnf import Cnf
from repro.sat.preprocess import preprocess
from repro.sat.solver import CdclSolver


class TestUnitPropagation:
    def test_chain_of_units(self):
        cnf = Cnf()
        cnf.add_clause([1])
        cnf.add_clause([-1, 2])
        cnf.add_clause([-2, 3])
        result = preprocess(cnf)
        assert result.forced == {1: 1, 2: 1, 3: 1}
        assert not result.unsatisfiable
        assert result.simplified.n_clauses == 0

    def test_conflict_detected(self):
        cnf = Cnf()
        cnf.add_clause([1])
        cnf.add_clause([-1])
        result = preprocess(cnf)
        assert result.unsatisfiable

    def test_derived_conflict(self):
        cnf = Cnf()
        cnf.add_clause([1])
        cnf.add_clause([-1, 2])
        cnf.add_clause([-2])
        assert preprocess(cnf).unsatisfiable


class TestCleanup:
    def test_tautology_removed(self):
        cnf = Cnf()
        cnf.add_clause([1, -1, 2])
        result = preprocess(cnf)
        assert result.removed_tautologies == 1

    def test_duplicates_removed(self):
        cnf = Cnf()
        cnf.add_clause([1, 2])
        cnf.add_clause([2, 1])
        result = preprocess(cnf)
        assert result.removed_duplicates == 1
        assert result.simplified.n_clauses <= 1

    def test_pure_literals_reported_separately(self):
        cnf = Cnf()
        cnf.add_clause([1, 2])
        cnf.add_clause([1, 3])
        result = preprocess(cnf)
        # Var 1 only occurs positively: chosen true, clauses vanish.
        assert result.eliminated_pure.get(1) == 1
        assert 1 not in result.forced

    def test_pure_literals_can_be_disabled(self):
        cnf = Cnf()
        cnf.add_clause([1, 2])
        result = preprocess(cnf, pure_literals=False)
        assert result.eliminated_pure == {}
        assert result.simplified.n_clauses == 1


class TestEquisatisfiability:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_preprocess_preserves_satisfiability(self, seed):
        rng = random.Random(seed)
        n_vars = rng.randint(2, 8)
        cnf = Cnf(n_vars)
        for _ in range(rng.randint(1, 25)):
            width = rng.randint(1, min(3, n_vars))
            chosen = rng.sample(range(1, n_vars + 1), width)
            cnf.add_clause(
                [v if rng.random() < 0.5 else -v for v in chosen]
            )
        original = CdclSolver(cnf).solve().satisfiable
        result = preprocess(cnf)
        if result.unsatisfiable:
            assert original is False
        else:
            # Forced assignments + simplified clauses must be jointly
            # satisfiable exactly when the original is.
            solver = CdclSolver(result.simplified)
            for var, value in result.forced.items():
                solver.add_clause([var if value else -var])
            assert solver.solve().satisfiable is original

    def test_forced_assignments_are_consequences(self):
        """Every forced var must hold in every model of the original."""
        cnf = Cnf()
        cnf.add_clause([1])
        cnf.add_clause([-1, 2])
        cnf.add_clause([3, 4])
        result = preprocess(cnf)
        for bits in itertools.product([0, 1], repeat=4):
            assignment = [0] + list(bits)
            if cnf.evaluate(assignment):
                for var, value in result.forced.items():
                    assert assignment[var] == value
