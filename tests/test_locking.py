"""Tests for the defense implementations (EFF, EFF-Dyn, DOS, DFS, RLL, TPM)."""

import random

import pytest

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.bench_suite.iscas import s27_netlist
from repro.locking.dfs import lock_with_dfs
from repro.locking.dos import lock_with_dos
from repro.locking.eff import ConstantKeystream, lock_with_eff
from repro.locking.effdyn import EffDynLock, lock_with_effdyn
from repro.locking.keygates import place_keygates
from repro.locking.rll import lock_combinational_rll
from repro.locking.tpm import TamperProofMemory, AuthenticationScheme
from repro.netlist.transform import extract_combinational_core
from repro.scan.chain import ScanChainSpec
from repro.sim.logicsim import evaluate
from repro.sim.seqsim import SequentialSimulator
from repro.util.bitvec import random_bits


class TestKeygatePlacement:
    def test_random_placement_is_valid(self):
        spec = place_keygates(20, 8, random.Random(0))
        assert spec.n_keygates == 8
        assert len(set(spec.keygate_positions)) == 8

    def test_spread_placement_is_even(self):
        spec = place_keygates(21, 5, random.Random(0), policy="spread")
        positions = spec.keygate_positions
        assert len(positions) == 5
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        assert max(gaps) - min(gaps) <= 2

    def test_spread_zero_gates(self):
        assert place_keygates(5, 0, random.Random(0), policy="spread").n_keygates == 0

    def test_too_many_gates_rejected(self):
        with pytest.raises(ValueError):
            place_keygates(4, 4, random.Random(0))

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            place_keygates(8, 2, random.Random(0), policy="magic")

    def test_deterministic_given_rng(self):
        assert (
            place_keygates(30, 10, random.Random(5)).keygate_positions
            == place_keygates(30, 10, random.Random(5)).keygate_positions
        )


class TestTpm:
    def test_compare(self):
        tpm = TamperProofMemory.with_key([1, 0, 1])
        assert tpm.compare([1, 0, 1])
        assert not tpm.compare([1, 0, 0])
        assert not tpm.compare([1, 0])

    def test_secret_not_in_repr(self):
        tpm = TamperProofMemory.with_key([1, 0, 1])
        assert "1" not in repr(tpm).replace("width=3", "")

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            TamperProofMemory.with_key([0, 2])

    def test_authentication_selects_prng_on_mismatch(self):
        auth = AuthenticationScheme(TamperProofMemory.with_key([1, 1, 0]))
        auth.authenticate([0, 0, 0])
        # Shift with wrong key: PRNG drives the gates.
        assert auth.select_key(1, [0, 1, 0]) == [0, 1, 0]
        # Capture: always the TPM key.
        assert auth.select_key(0, [0, 1, 0]) == [1, 1, 0]

    def test_authentication_selects_secret_on_match(self):
        auth = AuthenticationScheme(TamperProofMemory.with_key([1, 1, 0]))
        auth.authenticate([1, 1, 0])
        assert auth.select_key(1, [0, 1, 0]) == [1, 1, 0]

    def test_bad_scan_enable(self):
        auth = AuthenticationScheme(TamperProofMemory.with_key([1]))
        with pytest.raises(ValueError):
            auth.select_key(2, [0])


class TestEffDynLock:
    def test_seed_width_equals_keygates(self):
        netlist = s27_netlist()
        with pytest.raises(ValueError):
            EffDynLock(
                netlist=netlist,
                spec=ScanChainSpec(n_flops=3, keygate_positions=(0,)),
                lfsr_taps=(0, 1),
                seed=(1, 0),  # two bits for one gate
                secret_key=(0,),
            )

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            lock_with_effdyn(
                s27_netlist(), key_bits=2, rng=random.Random(0), seed=[0, 0]
            )

    def test_explicit_seed_respected(self):
        lock = lock_with_effdyn(
            s27_netlist(), key_bits=2, rng=random.Random(0), seed=[1, 1]
        )
        assert lock.seed == (1, 1)

    def test_public_view_hides_secrets(self):
        lock = lock_with_effdyn(s27_netlist(), key_bits=2, rng=random.Random(1))
        view = lock.public_view()
        assert not hasattr(view, "seed")
        assert view.lfsr_width == 2
        assert view.spec == lock.spec

    def test_authenticated_tester_sees_clean_scan(self):
        netlist = s27_netlist()
        lock = lock_with_effdyn(netlist, key_bits=2, rng=random.Random(2))
        oracle = lock.make_oracle(test_key=list(lock.secret_key))
        assert not oracle.obfuscation_enabled
        rng = random.Random(3)
        pattern = random_bits(3, rng)
        response = oracle.query(pattern)
        sim = SequentialSimulator(netlist)
        sim.set_state_vector(pattern)
        sim.step({net: 0 for net in netlist.inputs})
        assert response.scan_out == sim.get_state_vector()

    def test_wrong_test_key_enables_obfuscation(self):
        lock = lock_with_effdyn(s27_netlist(), key_bits=2, rng=random.Random(2))
        wrong = [1 - b for b in lock.secret_key]
        assert lock.make_oracle(test_key=wrong).obfuscation_enabled


class TestEffStatic:
    def test_key_width_enforced(self):
        lock = lock_with_eff(s27_netlist(), key_bits=2, rng=random.Random(0))
        assert len(lock.secret_key) == 2

    def test_constant_keystream(self):
        ks = ConstantKeystream([1, 0])
        assert ks.next_key() == [1, 0]
        ks.restart()
        assert ks.next_key() == [1, 0]

    def test_all_zero_key_is_transparent(self):
        netlist = s27_netlist()
        lock = lock_with_eff(
            netlist, key_bits=2, rng=random.Random(1), secret_key=[0, 0]
        )
        oracle = lock.make_oracle()
        rng = random.Random(4)
        pattern = random_bits(3, rng)
        response = oracle.query(pattern)
        sim = SequentialSimulator(netlist)
        sim.set_state_vector(pattern)
        sim.step({net: 0 for net in netlist.inputs})
        assert response.scan_out == sim.get_state_vector()


class TestDos:
    def test_key_constant_within_query_after_restart(self):
        rng = random.Random(5)
        config = GeneratorConfig(n_flops=6, n_inputs=3, n_outputs=2)
        netlist = generate_circuit(config, rng, name="d")
        lock = lock_with_dos(netlist, key_bits=3, rng=rng, period_p=1)
        oracle = lock.make_oracle()
        # Repeatability across queries (restart pins the key).
        pattern = random_bits(6, random.Random(6))
        assert oracle.query(pattern).scan_out == oracle.query(pattern).scan_out

    def test_public_view_carries_period(self):
        lock = lock_with_dos(
            s27_netlist(), key_bits=2, rng=random.Random(0), period_p=4
        )
        assert lock.public_view().period_p == 4


class TestRll:
    @pytest.mark.parametrize("trial", range(5))
    def test_correct_key_restores_function(self, trial):
        rng = random.Random(200 + trial)
        config = GeneratorConfig(n_flops=5, n_inputs=4, n_outputs=3)
        netlist = generate_circuit(config, rng, name=f"r{trial}")
        core, ppi, _ = extract_combinational_core(netlist)
        lock = lock_combinational_rll(core, key_bits=6, rng=rng)
        for _ in range(8):
            bits = {net: rng.randrange(2) for net in core.inputs}
            locked_inputs = dict(bits)
            locked_inputs.update(zip(lock.key_inputs, lock.secret_key))
            original = evaluate(core, bits)
            locked = evaluate(lock.locked, locked_inputs)
            for net in core.outputs:
                assert locked[net] == original[net]

    def test_wrong_key_corrupts_some_output(self):
        rng = random.Random(300)
        config = GeneratorConfig(n_flops=5, n_inputs=4, n_outputs=3)
        netlist = generate_circuit(config, rng, name="rw")
        core, _, _ = extract_combinational_core(netlist)
        lock = lock_combinational_rll(core, key_bits=6, rng=rng)
        wrong_key = [1 - b for b in lock.secret_key]
        corrupted = False
        for _ in range(20):
            bits = {net: rng.randrange(2) for net in core.inputs}
            locked_inputs = dict(bits)
            locked_inputs.update(zip(lock.key_inputs, wrong_key))
            original = evaluate(core, bits)
            locked = evaluate(lock.locked, locked_inputs)
            if any(locked[n] != original[n] for n in core.outputs):
                corrupted = True
                break
        assert corrupted

    def test_too_many_key_bits_rejected(self):
        netlist = s27_netlist()
        with pytest.raises(ValueError):
            lock_combinational_rll(netlist, key_bits=100, rng=random.Random(0))


class TestDfs:
    def test_scan_out_blocked(self):
        lock = lock_with_dfs(s27_netlist(), key_bits=3, rng=random.Random(0))
        oracle = lock.make_oracle()
        with pytest.raises(PermissionError):
            oracle.scan_out()

    def test_load_and_observe_uses_secret_key(self):
        netlist = s27_netlist()
        lock = lock_with_dfs(netlist, key_bits=3, rng=random.Random(1))
        oracle = lock.make_oracle()
        rng = random.Random(2)
        for _ in range(10):
            state = random_bits(3, rng)
            pis = random_bits(4, rng)
            observed = oracle.load_and_observe(state, pis)
            # Expected: original (unlocked) circuit's POs for that state.
            values = evaluate(
                netlist,
                dict(zip(netlist.inputs, pis)),
                dict(zip(netlist.dff_q_nets(), state)),
            )
            assert observed == [values[n] for n in netlist.outputs]

    def test_input_validation(self):
        lock = lock_with_dfs(s27_netlist(), key_bits=3, rng=random.Random(1))
        oracle = lock.make_oracle()
        with pytest.raises(ValueError):
            oracle.load_and_observe([0, 1])
        with pytest.raises(ValueError):
            oracle.load_and_observe([0, 1, 0], [1])
