"""Cross-substrate validation: the SAT solver vs GF(2) linear algebra.

Random affine systems over GF(2) have ground-truth solvability via
Gaussian elimination; encoded as XOR constraints they exercise exactly
the clause structure DynUnlock's seed overlays produce.  The CDCL solver
must agree with the algebra on satisfiability, model validity, and
solution counts.
"""

import random

import pytest

np = pytest.importorskip("numpy")  # whole-module skip on the numpy-less leg
from hypothesis import given, settings, strategies as st

from repro.gf2.matrix import GF2Matrix
from repro.gf2.solve import nullspace_basis, rank, solve_affine
from repro.sat.cnf import Cnf
from repro.sat.enumerate import count_models
from repro.sat.solver import CdclSolver


def encode_affine_system(matrix: np.ndarray, rhs: list[int]) -> Cnf:
    """CNF for ``A x = b``: one XOR chain per row."""
    n_rows, n_cols = matrix.shape
    cnf = Cnf(n_cols)  # vars 1..n_cols are x
    for row_idx in range(n_rows):
        lits = [int(col) + 1 for col in np.nonzero(matrix[row_idx])[0]]
        parity = rhs[row_idx]
        if not lits:
            if parity:
                cnf.add_clause([1])
                cnf.add_clause([-1])
            continue
        # Chain: acc_0 = x_l0; acc_i = acc_{i-1} ^ x_li; acc_last = parity.
        acc = lits[0]
        for lit in lits[1:]:
            aux = cnf.new_var()
            cnf.add_clause([-aux, acc, lit])
            cnf.add_clause([-aux, -acc, -lit])
            cnf.add_clause([aux, acc, -lit])
            cnf.add_clause([aux, -acc, lit])
            acc = aux
        cnf.add_clause([acc] if parity else [-acc])
    return cnf


def random_system(rng: random.Random, n_rows: int, n_cols: int):
    matrix = np.array(
        [[rng.randrange(2) for _ in range(n_cols)] for _ in range(n_rows)],
        dtype=np.uint8,
    )
    rhs = [rng.randrange(2) for _ in range(n_rows)]
    return matrix, rhs


class TestSolverAgreesWithGaussianElimination:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_satisfiability_matches(self, seed):
        rng = random.Random(seed)
        n_rows, n_cols = rng.randint(1, 10), rng.randint(1, 8)
        matrix, rhs = random_system(rng, n_rows, n_cols)
        algebraic = solve_affine(GF2Matrix(matrix), rhs)
        cnf = encode_affine_system(matrix, rhs)
        result = CdclSolver(cnf).solve()
        assert (result.satisfiable is True) == (algebraic is not None)
        if result.satisfiable:
            x = np.array(
                [result.model[v] for v in range(1, n_cols + 1)],
                dtype=np.uint8,
            )
            assert list((matrix @ x) & 1) == [int(b) for b in rhs]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_model_count_is_two_to_the_nullity(self, seed):
        rng = random.Random(seed)
        n_rows, n_cols = rng.randint(1, 6), rng.randint(1, 6)
        matrix, rhs = random_system(rng, n_rows, n_cols)
        gf2_matrix = GF2Matrix(matrix)
        expected = (
            0
            if solve_affine(gf2_matrix, rhs) is None
            else 1 << len(nullspace_basis(gf2_matrix))
        )
        cnf = encode_affine_system(matrix, rhs)
        solver = CdclSolver(cnf)
        counted = count_models(
            solver, list(range(1, n_cols + 1)), limit=expected + 8
        )
        assert counted == expected

    def test_rank_deficient_system_has_multiple_solutions(self):
        matrix = np.array([[1, 1, 0], [1, 1, 0]], dtype=np.uint8)
        assert rank(GF2Matrix(matrix)) == 1
        cnf = encode_affine_system(matrix, [1, 1])
        assert count_models(CdclSolver(cnf), [1, 2, 3], limit=16) == 4
