"""Tests for whole-netlist validation."""

import pytest

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist, NetlistError
from repro.netlist.validate import validate_netlist


def valid_netlist() -> Netlist:
    netlist = Netlist("v")
    netlist.add_input("a")
    netlist.add_gate("x", GateType.NOT, ["a"])
    netlist.add_dff("q", "x")
    netlist.add_gate("y", GateType.AND, ["q", "a"])
    netlist.add_output("y")
    return netlist


class TestValidate:
    def test_valid_netlist_report(self):
        report = validate_netlist(valid_netlist())
        assert report["gates"] == 2
        assert report["dffs"] == 1
        assert report["undriven"] == 0

    def test_undriven_gate_input(self):
        netlist = Netlist("u")
        netlist.add_gate("y", GateType.NOT, ["ghost"])
        netlist.add_output("y")
        with pytest.raises(NetlistError, match="undriven"):
            validate_netlist(netlist)

    def test_undriven_dff_d(self):
        netlist = Netlist("u")
        netlist.add_dff("q", "ghost")
        with pytest.raises(NetlistError, match="undriven"):
            validate_netlist(netlist)

    def test_undriven_output(self):
        netlist = Netlist("u")
        netlist.add_input("a")
        netlist.add_output("nowhere")
        with pytest.raises(NetlistError, match="undriven"):
            validate_netlist(netlist)

    def test_allow_dangling(self):
        netlist = Netlist("u")
        netlist.add_gate("y", GateType.NOT, ["ghost"])
        netlist.add_output("y")
        report = validate_netlist(netlist, allow_dangling=True)
        assert report["undriven"] == 1

    def test_cycle_detected(self):
        netlist = Netlist("c")
        netlist.add_gate("a", GateType.NOT, ["b"])
        netlist.add_gate("b", GateType.NOT, ["a"])
        with pytest.raises(NetlistError, match="cycle"):
            validate_netlist(netlist)
