"""Tests for repro.observability: metrics, spans, sessions, and `top`.

Covers the four contracts docs/observability.md makes:

* counter/histogram semantics and deterministic Prometheus rendering;
* span timing monotonicity on real scheduler runs (serial + parallel)
  and on a real end-to-end attack (phase coverage, DIP counts);
* off-by-default invariance -- with no session, results AND cache
  entry bytes are identical to an instrumented run (modulo the
  pre-existing nondeterministic wall-time field);
* the artifact schema_version/run provenance contract, and `top`
  rendering from canned metrics directories.
"""

import json

import pytest

from repro.cli import main
from repro.observability import (
    JsonLogger,
    MetricsRegistry,
    RunObserver,
    aggregate_spans,
    begin_job_span,
    end_job_span,
    end_session,
    start_session,
)
from repro.observability import spans as obs
from repro.observability.top import load_snapshot, render_top, watch
from repro.reports.profiles import ExperimentProfile
from repro.runner.artifacts import (
    ARTIFACT_FORMAT,
    ARTIFACT_SCHEMA_VERSION,
    load_artifact,
    write_artifact,
)
from repro.runner.scheduler import run_jobs
from repro.runner.spec import JobSpec
from repro.runner.stores import open_store

TINY = ExperimentProfile(
    name="tiny",
    scale=64,
    key_bits=6,
    n_seeds=1,
    timeout_s=120.0,
    table3_key_sizes=(6,),
)


def tiny_specs(n=3, duration_s=0.0):
    return [
        JobSpec.make("selfcheck", TINY, payload=f"p{i}", duration_s=duration_s)
        for i in range(n)
    ]


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test must leave the process-global session and span clear."""
    yield
    end_session()
    obs._CURRENT = None


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestCounter:
    def test_inc_and_value_by_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", "x")
        c.inc(experiment="a")
        c.inc(2, experiment="a")
        c.inc(experiment="b")
        assert c.value(experiment="a") == 3
        assert c.value(experiment="b") == 1
        assert c.value(experiment="missing") == 0

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("repro_x_total", "x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_label_order_does_not_matter(self):
        c = MetricsRegistry().counter("repro_x_total", "x")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.value(b="2", a="1") == 2

    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_x_total", "x") is reg.counter("repro_x_total", "x")

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "x")
        with pytest.raises(ValueError):
            reg.histogram("repro_x_total", "x")


class TestHistogram:
    def test_observe_stats(self):
        h = MetricsRegistry().histogram("repro_d_seconds", "d")
        h.observe(0.02, experiment="a")
        h.observe(0.2, experiment="a")
        count, total = h.stats(experiment="a")
        assert count == 2
        assert total == pytest.approx(0.22)

    def test_render_buckets_are_cumulative(self):
        h = MetricsRegistry().histogram("repro_d_seconds", "d", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = "\n".join(h.render())
        assert 'le="0.1"} 1' in text
        assert 'le="1"} 2' in text
        assert 'le="+Inf"} 3' in text
        assert "repro_d_seconds_count 3" in text

    def test_render_prom_is_deterministic_and_sorted(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("repro_b_total", "b").inc(z="1")
            reg.counter("repro_b_total", "b").inc(a="1")
            reg.counter("repro_a_total", "a").inc()
            reg.histogram("repro_h_seconds", "h").observe(0.3)
            return reg.render_prom()

        first, second = build(), build()
        assert first == second
        # Family order is name-sorted regardless of registration order.
        assert first.index("repro_a_total") < first.index("repro_b_total")

    def test_int_values_render_without_decimal_point(self):
        reg = MetricsRegistry()
        reg.counter("repro_n_total", "n").inc(3)
        assert "repro_n_total 3\n" in reg.render_prom()


# ---------------------------------------------------------------------------
# Worker-side spans
# ---------------------------------------------------------------------------


class TestSpans:
    def test_noop_when_inactive(self):
        assert not obs.active()
        obs.incr("dips")  # must not raise
        obs.add_phase("solve", 0.1)
        with obs.phase("solve"):
            pass
        # The off-path context manager is a single shared instance.
        assert obs.phase("a") is obs.phase("b")

    def test_span_record_timing_monotonic(self):
        span = begin_job_span("demo", "demo[x=1]", spec_hash="abc")
        assert obs.active()
        with obs.phase("solve"):
            sum(range(1000))
        obs.incr("dips", 4)
        obs.annotate(note="hi")
        record = end_job_span(span)
        assert not obs.active()
        assert record["experiment"] == "demo"
        assert record["ended_unix"] >= record["started_unix"]
        assert record["duration_s"] >= record["phases"]["solve"] >= 0.0
        assert record["counts"] == {"dips": 4}
        assert record["attrs"] == {"note": "hi"}

    def test_phase_times_accumulate(self):
        span = begin_job_span("demo", "demo")
        obs.add_phase("solve", 0.25)
        obs.add_phase("solve", 0.25)
        record = end_job_span(span)
        assert record["phases"]["solve"] == pytest.approx(0.5)


class TestJsonLogger:
    def test_line_shape(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with path.open("w") as fh:
            logger = JsonLogger(fh, run_id="r1")
            logger.log("hello", level="warn", n=2, odd=object())
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 1
        line = lines[0]
        assert line["event"] == "hello"
        assert line["level"] == "warn"
        assert line["run_id"] == "r1"
        assert line["n"] == 2
        assert "object object" in line["odd"]  # str() fallback
        assert line["ts"] > 0


# ---------------------------------------------------------------------------
# Session + scheduler integration
# ---------------------------------------------------------------------------


class TestSessionWithScheduler:
    def run_instrumented(self, tmp_path, *, jobs):
        # $REPRO_CACHE_BACKEND may pick any backend; the store counter
        # assertions read the resolved name back.
        store = open_store(tmp_path / "cache")
        self.backend = store.name
        session = start_session(
            metrics_dir=tmp_path / "metrics",
            log_json=tmp_path / "log.jsonl",
            command="test",
            argv=["test"],
        )
        observer = RunObserver(session)
        report = run_jobs(
            tiny_specs(duration_s=0.005), jobs=jobs, store=store, observer=observer
        )
        rerun = run_jobs(
            tiny_specs(duration_s=0.005), jobs=jobs, store=store, observer=observer
        )
        end_session()
        return session, report, rerun

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_spans_cover_run_and_monotone(self, tmp_path, jobs):
        session, report, rerun = self.run_instrumented(tmp_path, jobs=jobs)
        assert report.n_computed == 3 and rerun.n_cached == 3
        assert len(session.spans) == 6
        computed = [s for s in session.spans if s["status"] == "computed"]
        cached = [s for s in session.spans if s["status"] == "cached"]
        assert len(computed) == 3 and len(cached) == 3
        for span in computed:
            assert span["ended_unix"] >= span["started_unix"]
            assert span["queue_s"] >= 0.0
            assert span["duration_s"] >= 0.005
            assert all(v >= 0.0 for v in span["phases"].values())

    def test_metrics_and_files(self, tmp_path):
        session, _, _ = self.run_instrumented(tmp_path, jobs=1)
        metrics_dir = tmp_path / "metrics"
        for name in (
            "run.json",
            "spans.jsonl",
            "metrics.prom",
            "BENCH_obs.json",
            "BENCH_obs.csv",
        ):
            assert (metrics_dir / name).is_file(), name

        jobs_total = session.metrics.counter("repro_jobs_total", "")
        assert jobs_total.value(experiment="selfcheck", status="computed") == 3
        assert jobs_total.value(experiment="selfcheck", status="cached") == 3
        store_reqs = session.metrics.counter("repro_store_requests_total", "")
        assert store_reqs.value(backend=self.backend, event="miss") == 3
        assert store_reqs.value(backend=self.backend, event="put") == 3
        assert store_reqs.value(backend=self.backend, event="hit") == 3
        count, total = session.metrics.histogram(
            "repro_job_duration_seconds", ""
        ).stats(experiment="selfcheck")
        assert count == 3 and total >= 3 * 0.005

        prom = (metrics_dir / "metrics.prom").read_text()
        assert 'repro_jobs_total{experiment="selfcheck",status="computed"} 3' in prom
        events = [
            json.loads(line)["event"]
            for line in (tmp_path / "log.jsonl").read_text().splitlines()
        ]
        assert events[0] == "run_started" and events[-1] == "run_finished"
        assert events.count("job_finished") == 6

    def test_obs_artifact_summarises_phases(self, tmp_path):
        self.run_instrumented(tmp_path, jobs=1)
        artifact = load_artifact(tmp_path / "metrics" / "BENCH_obs.json")
        assert artifact["headers"][0] == "Experiment"
        (row,) = artifact["rows"]
        assert row[0] == "selfcheck"
        assert row[1] == 6  # jobs: 3 computed + 3 cached
        total = row[-1]
        assert total >= 3 * 0.005
        assert artifact["meta"]["n_spans"] == 6
        assert artifact["run"]["run_id"] == artifact["meta"]["run_id"]

    def test_only_one_session_at_a_time(self, tmp_path):
        start_session(command="one")
        with pytest.raises(RuntimeError):
            start_session(command="two")


class TestOffByDefaultInvariance:
    """Metrics off must change neither results nor cache entry bytes."""

    @staticmethod
    def entries_of(store):
        out = {}
        for entry in store.iterate():
            doc = json.loads(entry.raw.decode())
            # duration_s is nondeterministic wall time in *every* run,
            # instrumented or not -- exclude it, compare the rest exactly.
            doc.pop("duration_s")
            out[(entry.experiment, entry.key)] = doc
        return out

    def test_results_and_cache_bytes_identical(self, tmp_path):
        specs = tiny_specs()
        plain_store = open_store(tmp_path / "plain")
        plain = run_jobs(specs, jobs=1, store=plain_store)

        session = start_session(metrics_dir=tmp_path / "metrics", command="test")
        observed = run_jobs(
            specs, jobs=1, store=open_store(tmp_path / "obs"), observer=RunObserver(session)
        )
        end_session()

        assert [o.result for o in plain.outcomes] == [
            o.result for o in observed.outcomes
        ]
        plain_entries = self.entries_of(plain_store)
        obs_entries = self.entries_of(open_store(tmp_path / "obs"))
        assert plain_entries == obs_entries
        for doc in obs_entries.values():
            assert set(doc) == {"label", "result", "spec"}  # no span leakage

    def test_cache_written_with_metrics_replays_without(self, tmp_path):
        specs = tiny_specs()
        store = open_store(tmp_path / "cache")
        session = start_session(command="test")
        run_jobs(specs, jobs=1, store=store, observer=RunObserver(session))
        end_session()
        replay = run_jobs(specs, jobs=1, store=store)
        assert replay.n_cached == len(specs)


# ---------------------------------------------------------------------------
# End-to-end: a real attack produces a phase-covering span
# ---------------------------------------------------------------------------


class TestRealAttackSpan:
    @pytest.mark.requires_numpy
    def test_cli_attack_records_attack_phases(self, tmp_path, capsys):
        code = main(
            [
                "attack",
                "s5378",
                "--scale",
                "64",
                "--key-bits",
                "4",
                "--timeout",
                "120",
                "--metrics-dir",
                str(tmp_path / "m"),
                "--log-json",
                str(tmp_path / "log.jsonl"),
            ]
        )
        assert code == 0
        assert "success          : True" in capsys.readouterr().out
        snapshot = load_snapshot(tmp_path / "m")
        (span,) = snapshot.spans
        assert span["experiment"] == "attack"
        phases = span["phases"]
        # The attack pipeline must account for model building, CNF
        # encoding, and SAT solving at minimum; oracle time exists
        # whenever the DIP loop iterated.
        for name in ("model", "encode", "solve"):
            assert phases.get(name, 0.0) >= 0.0 and name in phases
        assert span["counts"]["dips"] >= 1
        assert span["counts"]["oracle_queries"] >= 1
        assert span["counts"]["rounds"] >= 1
        prom = (tmp_path / "m" / "metrics.prom").read_text()
        assert 'repro_dips_total{experiment="attack"}' in prom
        events = [
            json.loads(line)["event"]
            for line in (tmp_path / "log.jsonl").read_text().splitlines()
        ]
        assert "run_started" in events and "run_finished" in events

    @pytest.mark.requires_numpy
    def test_grid_command_emits_metrics_and_identical_rows(self, tmp_path, capsys):
        args = [
            "table2",
            "s5378",
            "--profile",
            "quick",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main([*args, "--metrics-dir", str(tmp_path / "m")]) == 0
        with_metrics = capsys.readouterr().out
        assert "wrote metrics to" in capsys.readouterr().err or True
        assert main(args) == 0
        without_metrics = capsys.readouterr().out
        assert with_metrics == without_metrics
        snapshot = load_snapshot(tmp_path / "m")
        assert snapshot.run["command"] == "table2"
        computed = [s for s in snapshot.spans if s["status"] == "computed"]
        assert computed and all(
            s["phases"].get("solve", 0.0) >= 0.0 for s in computed
        )
        # The artifact's run block joins back to this metrics dir.
        artifact = load_artifact(tmp_path / "m" / "BENCH_obs.json")
        assert artifact["run"]["run_id"] == snapshot.run["run_id"]

    def test_fuzz_metrics(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--profile",
                "quick",
                "--trials",
                "2",
                "--seed",
                "0",
                "--no-resume",
                "--metrics-dir",
                str(tmp_path / "m"),
            ]
        )
        assert code == 0
        capsys.readouterr()
        prom = (tmp_path / "m" / "metrics.prom").read_text()
        assert 'repro_fuzz_trials_total{disposition="ran"} 2' in prom
        assert "repro_fuzz_violations_total 0" in prom


# ---------------------------------------------------------------------------
# top
# ---------------------------------------------------------------------------


def canned_metrics_dir(tmp_path):
    root = tmp_path / "m"
    root.mkdir()
    (root / "run.json").write_text(
        json.dumps(
            {
                "schema_version": 1,
                "run_id": "deadbeef0123",
                "command": "table2",
                "started_unix": 1000.0,
            }
        )
    )
    records = [
        {"kind": "submitted", "job_id": 0, "label": "a@quick", "t": 1001.0},
        {"kind": "submitted", "job_id": 1, "label": "b@quick", "t": 1002.0},
        {"kind": "submitted", "job_id": 2, "label": "c@quick", "t": 1003.0},
        {
            "kind": "span",
            "job_id": 0,
            "experiment": "table2",
            "label": "a@quick",
            "status": "computed",
            "queue_s": 0.5,
            "duration_s": 4.0,
            "started_unix": 1001.5,
            "ended_unix": 1005.5,
            "phases": {"solve": 2.5, "encode": 1.0},
            "counts": {"dips": 7},
        },
        {
            "kind": "span",
            "job_id": 1,
            "experiment": "table2",
            "label": "b@quick",
            "status": "cached",
            "queue_s": 0.0,
            "duration_s": 0.0,
            "phases": {},
            "counts": {},
        },
    ]
    with (root / "spans.jsonl").open("w") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
        fh.write('{"kind": "span", "job_id": 99, "trunc')  # torn live write
    return root


class TestTop:
    def test_snapshot_tolerates_torn_lines_and_finds_running(self, tmp_path):
        snapshot = load_snapshot(canned_metrics_dir(tmp_path))
        assert snapshot.run["run_id"] == "deadbeef0123"
        assert len(snapshot.spans) == 2
        (running,) = snapshot.running
        assert running["job_id"] == 2

    def test_render_frame(self, tmp_path):
        snapshot = load_snapshot(canned_metrics_dir(tmp_path))
        frame = render_top(snapshot, now=1010.0)
        assert "run deadbeef0123 (table2)  up 10s" in frame
        assert "jobs: 2 done (1 cached, 0 failed), 1 running" in frame
        assert "Where the time went" in frame
        assert "#2 c@quick" in frame  # the running job, with its age
        assert "a@quick — 4.00s" in frame
        assert "dips=7" in frame

    def test_render_empty_dir(self, tmp_path):
        frame = render_top(load_snapshot(tmp_path), now=0.0)
        assert "run ?" in frame

    def test_watch_once_and_missing_dir(self, tmp_path, capsys):
        root = canned_metrics_dir(tmp_path)
        assert watch(root, once=True) == 0
        assert "Where the time went" in capsys.readouterr().out
        assert watch(tmp_path / "absent", once=True) == 2
        assert "no metrics directory" in capsys.readouterr().err

    def test_cli_top_once(self, tmp_path, capsys):
        root = canned_metrics_dir(tmp_path)
        assert main(["top", str(root), "--once"]) == 0
        assert "run deadbeef0123" in capsys.readouterr().out

    def test_aggregate_folds_queue_and_other(self):
        headers, rows = aggregate_spans(
            [
                {
                    "experiment": "e",
                    "status": "computed",
                    "queue_s": 1.0,
                    "duration_s": 10.0,
                    "phases": {"solve": 4.0, "opt": 2.0},
                }
            ]
        )
        row = dict(zip(headers, rows[0]))
        assert row["Queue (s)"] == 1.0
        assert row["Solve (s)"] == 4.0
        # Other = opt (non-summary phase) + 4s unaccounted.
        assert row["Other (s)"] == pytest.approx(6.0)
        assert row["Total (s)"] == 10.0


# ---------------------------------------------------------------------------
# Artifact schema_version / run provenance
# ---------------------------------------------------------------------------


class TestArtifactSchema:
    def test_v3_layout_pinned(self, tmp_path):
        path = write_artifact(tmp_path, "demo", ["A"], [[1]], title="t")
        data = json.loads(path.read_text())
        assert data["format"] == ARTIFACT_FORMAT
        assert data["schema_version"] == ARTIFACT_SCHEMA_VERSION == 3
        assert data["kind"] == "demo"
        run = data["run"]
        assert set(run) == {
            "run_id",
            "created_unix",
            "python",
            "platform",
            "code_version",
        }
        assert len(run["run_id"]) == 12
        assert len(run["code_version"]) == 20
        # The experiment data lives under one payload block on disk...
        assert set(data["payload"]) == {
            "experiment",
            "title",
            "profile",
            "headers",
            "rows",
            "meta",
        }
        assert data["payload"]["rows"] == [[1]]
        # ...and load_artifact flattens it to the v1/v2-style view.
        loaded = load_artifact(path)
        assert loaded["rows"] == [[1]]
        assert loaded["experiment"] == "demo"
        assert loaded["kind"] == "demo"
        assert "payload" not in loaded

    def test_v2_shape_normalizes_with_kind_default(self, tmp_path):
        path = tmp_path / "v2.json"
        path.write_text(
            json.dumps(
                {
                    "format": ARTIFACT_FORMAT,
                    "schema_version": 2,
                    "experiment": "demo",
                    "headers": ["A"],
                    "rows": [[1]],
                    "meta": {},
                }
            )
        )
        loaded = load_artifact(path)
        assert loaded["rows"] == [[1]]
        assert loaded["kind"] == "demo"

    def test_artifact_inherits_session_run_id(self, tmp_path):
        session = start_session(command="test")
        path = write_artifact(tmp_path, "demo", ["A"], [[1]])
        end_session()
        assert json.loads(path.read_text())["run"]["run_id"] == session.run_id

    def test_legacy_v1_without_schema_version_loads(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(
            json.dumps(
                {"format": ARTIFACT_FORMAT, "headers": ["A"], "rows": [[1]], "meta": {}}
            )
        )
        assert load_artifact(path)["rows"] == [[1]]

    def test_checked_in_baselines_still_load(self):
        data = load_artifact("benchmarks/baselines/table2_quick.json")
        assert data["experiment"] == "table2"

    def test_future_schema_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps(
                {
                    "format": ARTIFACT_FORMAT,
                    "schema_version": ARTIFACT_SCHEMA_VERSION + 1,
                    "rows": [],
                }
            )
        )
        with pytest.raises(ValueError, match="upgrade"):
            load_artifact(path)

    @pytest.mark.parametrize("bad", [0, -1, "2", 1.5, True])
    def test_invalid_schema_version_rejected(self, tmp_path, bad):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {"format": ARTIFACT_FORMAT, "schema_version": bad, "rows": []}
            )
        )
        with pytest.raises(ValueError, match="schema_version"):
            load_artifact(path)
