"""Tests for the continuous fuzz farm (repro.farm).

The farm's load-bearing properties, pinned:

* the coverage scheduler is a pure function of (seed, corpus state) and
  demonstrably shifts sampling toward a planted always-violating cell
  -- strictly more trials than the uniform share, at a fixed seed;
* the corpus dedupes by shrunk-trial content hash, keeps exactly one
  (smallest) reproducer per failure identity, and rebuilds its index
  from disk faithfully;
* a farm killed at ANY point -- mid-corpus-write, mid-round, SIGTERM
  from outside -- resumes from its checkpoint and converges on state
  byte-identical to an uninterrupted run at the same (seed, rounds);
* farm corpus entries replay through the stock ``fuzz-replay`` command,
  whose exit codes (0 ok / 1 stale / 2 damaged) are part of the CLI
  contract;
* farm rounds stream through the observability session and render in
  ``dynunlock top``.
"""

import json
import os
import random
import signal
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.cli import main
from repro.farm.corpus import (
    ENTRY_KINDS,
    FarmCorpus,
    content_hash,
    entry_identity,
    trial_size,
)
from repro.farm.driver import (
    FarmConfig,
    FarmDriver,
    FarmStateError,
    load_status,
    run_farm,
)
from repro.farm.schedule import (
    BUCKET_FLOP_RANGES,
    SHAPE_BUCKETS,
    FarmScheduler,
    cell_key,
    sample_config_in_bucket,
    shape_bucket,
)
from repro.fuzz.campaign import sample_trial_params
from repro.fuzz.corpus import CrashEntry, write_entry
from repro.fuzz.invariants import KEY_EQUIVALENCE
from repro.matrix.registry import (
    AttackOutcome,
    applicable_pairs,
    register_attack,
    temporary_registrations,
)
from repro.observability.top import load_snapshot, render_top
from repro.reports.profiles import PROFILES, profile_to_dict
from repro.util.rng import hash_label

QUICK = PROFILES["quick"]


def tree_bytes(root: Path) -> dict[str, bytes]:
    """Every file under ``root`` as relative-path -> exact bytes."""
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


def _liar(lock, *, profile, timeout_s):
    """Planted always-violating attack: forged key, forged verified bit."""
    return AttackOutcome(
        success=True,
        recovered_key=[1] * int(getattr(lock, "key_bits", 1)),
        iterations=1,
        queries=0,
        runtime_s=0.0,
        verified=True,
        detail="planted",
    )


def liar_config(state_dir, **overrides) -> FarmConfig:
    """A small, fast farm config pinned to the planted liar cell."""
    settings = dict(
        seed=0,
        round_trials=3,
        concurrency=1,
        state_dir=str(state_dir),
        stability_every=0,
        shrink_limit=1,
        shrink_evals=4,
        opt_level=1,
        attacks=["liar"],
        defenses=["eff"],
    )
    settings.update(overrides)
    return FarmConfig(**settings)


class TestShapeBuckets:
    def test_bucket_boundaries(self):
        assert shape_bucket(3) == "small"
        assert shape_bucket(6) == "small"
        assert shape_bucket(7) == "medium"
        assert shape_bucket(10) == "medium"
        assert shape_bucket(11) == "large"
        assert shape_bucket(14) == "large"
        # Out-of-range flop counts clamp instead of crashing.
        assert shape_bucket(2) == "small"
        assert shape_bucket(20) == "large"

    def test_buckets_partition_the_generator_range(self):
        covered = set()
        for lo, hi in BUCKET_FLOP_RANGES.values():
            covered.update(range(lo, hi + 1))
        assert covered == set(range(3, 15))

    @pytest.mark.parametrize("bucket", SHAPE_BUCKETS)
    def test_sample_config_in_bucket_stays_in_bucket(self, bucket):
        lo, hi = BUCKET_FLOP_RANGES[bucket]
        for draw in range(25):
            config = sample_config_in_bucket(random.Random(draw), bucket)
            assert lo <= config.n_flops <= hi
            assert shape_bucket(config.n_flops) == bucket


class TestScheduler:
    def _pairs(self, n=10):
        return [("atk", f"d{index}") for index in range(n)]

    def test_cells_are_pairs_times_buckets(self):
        scheduler = FarmScheduler(self._pairs(10))
        assert len(scheduler.cells) == 30
        assert scheduler.coverage() == (0, 30)

    def test_planted_violating_cell_outdraws_uniform(self):
        # The tentpole property: an always-violating cell must receive
        # strictly more trials than uniform sampling would give it.
        # Fully deterministic: fixed seed, hash_label-derived draws.
        scheduler = FarmScheduler(self._pairs(10), bias=4.0)
        planted = ("atk", "d0", "small")
        rounds, per_round = 40, 30
        counts: Counter = Counter()
        for round_index in range(rounds):
            scheduler.begin_round()
            frozen = scheduler.weights()
            picks = []
            for index in range(per_round):
                rng = random.Random(
                    hash_label(11, f"bias/{round_index}/{index}")
                )
                picks.append(scheduler.sample_cell(rng, frozen))
            for cell in picks:
                counts[cell] += 1
                lo, _hi = BUCKET_FLOP_RANGES[cell[2]]
                scheduler.record_trial(
                    {"attack": cell[0], "defense": cell[1], "n_flops": lo},
                    1 if cell == planted else 0,
                )
        uniform_share = rounds * per_round / len(scheduler.cells)
        assert counts[planted] > uniform_share
        assert counts.most_common(1)[0][0] == planted
        # Exploration floor: the bias must not starve other cells.
        assert scheduler.coverage() == (30, 30)

    def test_hot_score_decays_per_round(self):
        scheduler = FarmScheduler(self._pairs(2))
        scheduler.record_trial(
            {"attack": "atk", "defense": "d0", "n_flops": 4}, 2
        )
        key = cell_key("atk", "d0", "small")
        assert scheduler.stats[key]["hot"] == 2.0
        scheduler.begin_round()
        assert scheduler.stats[key]["hot"] == 1.0

    def test_violating_cell_outweighs_fresh_cell(self):
        scheduler = FarmScheduler(self._pairs(2))
        scheduler.record_trial(
            {"attack": "atk", "defense": "d0", "n_flops": 4}, 1
        )
        weights = dict(zip(scheduler.cells, scheduler.weights()))
        assert weights[("atk", "d0", "small")] > weights[("atk", "d1", "small")]

    def test_out_of_filter_trial_gets_its_own_cell(self):
        scheduler = FarmScheduler(self._pairs(1))
        scheduler.record_trial(
            {"attack": "other", "defense": "dX", "n_flops": 12}, 0
        )
        assert scheduler.stats[cell_key("other", "dX", "large")]["trials"] == 1

    def test_novel_shape_fires_once_per_signature(self):
        scheduler = FarmScheduler(self._pairs(1))
        trial = {
            "n_flops": 5,
            "gates_per_flop": 2.0,
            "max_fanin": 3,
            "locality": 8,
        }
        signature = scheduler.novel_shape(trial)
        assert signature is not None and "small" in signature
        assert scheduler.novel_shape(dict(trial, n_flops=4)) is None  # same sig
        assert scheduler.novel_shape(dict(trial, max_fanin=4)) is not None

    def test_round_trip_through_dict(self):
        scheduler = FarmScheduler(self._pairs(3), bias=2.0, explore=0.5)
        scheduler.record_trial(
            {"attack": "atk", "defense": "d1", "n_flops": 8}, 1
        )
        scheduler.novel_shape(
            {"n_flops": 8, "gates_per_flop": 2.0, "max_fanin": 3, "locality": 8}
        )
        clone = FarmScheduler.from_dict(scheduler.to_dict())
        assert clone.to_dict() == scheduler.to_dict()
        assert clone.weights() == scheduler.weights()
        assert clone.seen_shapes == scheduler.seen_shapes

    def test_plan_round_is_deterministic_and_campaign_shaped(self):
        scheduler = FarmScheduler(applicable_pairs(None, None))
        first = scheduler.plan_round(0, 0, 4, 1)
        again = scheduler.plan_round(0, 0, 4, 1)
        assert first == again
        assert first != scheduler.plan_round(0, 1, 4, 1)
        assert first != FarmScheduler(
            applicable_pairs(None, None)
        ).plan_round(1, 0, 4, 1)
        # Same flat JSON-safe shape as the one-shot campaign's trials,
        # so farm trials run and replay through identical machinery.
        campaign_keys = set(sample_trial_params(0, 0))
        for params in first:
            assert set(params) == campaign_keys
            json.dumps(params)
            assert params["key_bits"] < params["n_flops"]


def make_entry(invariant=KEY_EQUIVALENCE, detail="planted", **trial_overrides):
    trial = dict(
        attack="atk",
        defense="d0",
        key_bits=4,
        opt_level=1,
        trial_seed=7,
        n_flops=8,
        n_inputs=3,
        n_outputs=2,
        gates_per_flop=2.0,
        max_fanin=3,
        locality=8,
    )
    trial.update(trial_overrides)
    return CrashEntry(
        invariant=invariant,
        detail=detail,
        trial=trial,
        original_trial=dict(trial),
        profile=profile_to_dict(QUICK),
        meta={},
    )


class TestFarmCorpus:
    def test_trial_size_tracks_shrinking(self):
        big = make_entry().trial
        assert trial_size(dict(big, n_flops=4)) < trial_size(big)
        assert trial_size(dict(big, key_bits=1)) < trial_size(big)
        assert trial_size(dict(big, n_inputs=1)) < trial_size(big)

    def test_add_dispositions(self, tmp_path):
        corpus = FarmCorpus(tmp_path)
        cell = "atk|d0|medium"
        assert corpus.add(make_entry(), cell=cell) == "new"
        assert corpus.add(make_entry(), cell=cell) == "duplicate"
        # A strictly smaller reproducer replaces the bigger one ...
        assert corpus.add(make_entry(n_flops=4), cell=cell) == "minimized"
        assert len(corpus) == 1
        # ... and the replaced file is actually gone from disk.
        files = list((tmp_path / "corpus").rglob("*.json"))
        assert len(files) == 1
        small_hash = content_hash(
            KEY_EQUIVALENCE, make_entry(n_flops=4).trial
        )
        assert files[0].name == f"{small_hash}.json"
        # A bigger reproducer for a covered identity is ignored.
        assert corpus.add(make_entry(n_flops=9), cell=cell) == "ignored"
        # A different invariant is a different identity.
        assert corpus.add(make_entry(invariant="crash"), cell=cell) == "new"
        assert len(corpus) == 2

    def test_journal_records_adds_and_replacements(self, tmp_path):
        corpus = FarmCorpus(tmp_path)
        corpus.add(make_entry(), cell="atk|d0|medium", round_index=0)
        corpus.add(make_entry(), cell="atk|d0|medium")  # duplicate: no line
        corpus.add(make_entry(n_flops=4), cell="atk|d0|medium", round_index=1)
        lines = [
            json.loads(line)
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
        ]
        assert [record["op"] for record in lines] == ["add", "replace"]
        assert lines[0]["round"] == 0
        assert lines[1]["replaced"] == lines[0]["hash"]
        assert (tmp_path / lines[1]["path"]).is_file()

    def test_index_rebuilds_from_disk(self, tmp_path):
        first = FarmCorpus(tmp_path)
        first.add(make_entry(), cell="atk|d0|medium")
        first.add(make_entry(invariant="crash"), kind="crash", cell="a|b|small")
        reloaded = FarmCorpus(tmp_path)
        assert len(reloaded) == 2
        assert reloaded.add(make_entry(), cell="atk|d0|medium") == "duplicate"
        assert (
            reloaded.add(make_entry(n_flops=9), cell="atk|d0|medium")
            == "ignored"
        )
        assert reloaded.stats() == first.stats()
        stats = reloaded.stats()
        assert stats["entries"] == 2
        assert stats["by_kind"] == {"crash": 1, "violation": 1}
        assert set(stats["by_kind"]) <= set(ENTRY_KINDS)

    def test_identity_override_keeps_signatures_apart(self, tmp_path):
        # novel-shape entries key on their signature, not their cell:
        # two different shapes in one cell must both survive.
        corpus = FarmCorpus(tmp_path)
        cell = "atk|d0|medium"
        assert (
            corpus.add(
                make_entry(invariant="novel-shape"),
                kind="novel-shape",
                cell=cell,
                identity="novel-shape|sigA",
            )
            == "new"
        )
        assert (
            corpus.add(
                make_entry(invariant="novel-shape", max_fanin=4),
                kind="novel-shape",
                cell=cell,
                identity="novel-shape|sigB",
            )
            == "new"
        )
        assert len(corpus) == 2

    def test_default_identity_shape(self):
        entry = make_entry()
        assert entry_identity("violation", entry, "atk|d0|medium") == (
            f"violation|{KEY_EQUIVALENCE}|atk|d0|medium"
        )


class TestDriverState:
    def test_seed_mismatch_is_a_state_error(self, tmp_path):
        (tmp_path / "state.json").write_text(json.dumps({"seed": 5}))
        with pytest.raises(FarmStateError, match="seed"):
            FarmDriver(QUICK, FarmConfig(seed=0, state_dir=str(tmp_path)))

    def test_pair_filter_mismatch_is_a_state_error(self, tmp_path):
        (tmp_path / "state.json").write_text(
            json.dumps({"seed": 0, "pairs": [["x", "y"]]})
        )
        with pytest.raises(FarmStateError, match="filters"):
            FarmDriver(QUICK, FarmConfig(seed=0, state_dir=str(tmp_path)))

    def test_cli_reports_state_errors_as_exit_2(self, tmp_path, capsys):
        state = tmp_path / "farm"
        state.mkdir()
        (state / "state.json").write_text(json.dumps({"seed": 5}))
        code = main(
            ["farm", "run", "--state", str(state), "--seed", "0",
             "--max-rounds", "1", "--no-resume"]
        )
        assert code == 2
        assert "seed" in capsys.readouterr().err

    def test_status_of_missing_state(self, tmp_path, capsys):
        missing = tmp_path / "nowhere"
        assert load_status(missing)["exists"] is False
        assert main(["farm", "status", str(missing)]) == 1
        assert "no farm state" in capsys.readouterr().out
        assert main(["farm", "status", str(missing), "--json"]) == 1
        assert json.loads(capsys.readouterr().out)["exists"] is False


@pytest.mark.requires_numpy
class TestFarmEndToEnd:
    """Liar-cell farms: fast, violation-rich, fully deterministic."""

    def test_resume_is_byte_identical(self, tmp_path):
        # One farm run to rounds=2 straight, another stopped at 1 and
        # resumed to 2: corpus, journal and checkpoint must be equal
        # byte for byte.
        straight, split = tmp_path / "straight", tmp_path / "split"
        with temporary_registrations():
            register_attack("liar", _liar, applicable_to=("eff",))
            report = run_farm(QUICK, liar_config(straight, max_rounds=2))
            assert report.total_rounds == 2
            assert report.stopped == "rounds"
            assert report.violations_this_run > 0

            first = run_farm(QUICK, liar_config(split, max_rounds=1))
            assert first.total_rounds == 1
            resumed = run_farm(QUICK, liar_config(split, max_rounds=2))
            assert resumed.total_rounds == 2
            assert len(resumed.rounds) == 1  # only round 1 ran now
        assert tree_bytes(straight) == tree_bytes(split)
        # max_rounds is a lifetime cap: a third invocation is a no-op.
        with temporary_registrations():
            register_attack("liar", _liar, applicable_to=("eff",))
            again = run_farm(QUICK, liar_config(split, max_rounds=2))
        assert again.rounds == []
        assert tree_bytes(straight) == tree_bytes(split)

        status = load_status(split)
        assert status["exists"] and status["rounds"] == 2
        assert status["totals"]["trials"] == 6
        assert status["corpus"]["entries"] == len(list(
            (split / "corpus").rglob("*.json")
        ))

    def test_torn_corpus_commit_recovers_byte_identically(self, tmp_path):
        # Kill the farm mid-corpus-write (after one entry landed, before
        # the round committed): the resume replays the torn round and
        # converges on the uninterrupted run's exact bytes.
        reference, torn = tmp_path / "reference", tmp_path / "torn"
        with temporary_registrations():
            register_attack("liar", _liar, applicable_to=("eff",))
            run_farm(QUICK, liar_config(reference, max_rounds=1))

            driver = FarmDriver(QUICK, liar_config(torn, max_rounds=1))
            real_add = driver.corpus.add
            calls = Counter()

            def bomb(entry, **kwargs):
                calls["n"] += 1
                if calls["n"] >= 2:
                    raise RuntimeError("torn mid-commit")
                return real_add(entry, **kwargs)

            driver.corpus.add = bomb
            with pytest.raises(RuntimeError, match="torn"):
                driver.run()
            assert calls["n"] >= 2  # one write landed, then the tear
            assert not (torn / "state.json").is_file()  # round not committed

            recovered = run_farm(QUICK, liar_config(torn, max_rounds=1))
            assert recovered.total_rounds == 1
        assert tree_bytes(reference) == tree_bytes(torn)

    def test_interrupt_mid_run_checkpoints_completed_rounds(self, tmp_path):
        # KeyboardInterrupt (what SIGTERM is rebound to) between rounds:
        # completed rounds stay committed, the report says interrupted.
        state = tmp_path / "farm"
        with temporary_registrations():
            register_attack("liar", _liar, applicable_to=("eff",))
            driver = FarmDriver(QUICK, liar_config(state, max_rounds=3))
            real_round = driver.run_round
            rounds_run = Counter()

            def interrupted_round():
                if rounds_run["n"] >= 1:
                    raise KeyboardInterrupt
                rounds_run["n"] += 1
                return real_round()

            driver.run_round = interrupted_round
            report = driver.run()
            assert report.stopped == "interrupted"
            assert report.total_rounds == 1
            resumed = run_farm(QUICK, liar_config(state, max_rounds=3))
            assert resumed.total_rounds == 3
            assert len(resumed.rounds) == 2

    def test_corpus_replays_through_fuzz_replay(self, tmp_path, capsys):
        # The farm corpus is CrashEntry-compatible: attack-replay
        # entries reproduce, near-miss/novel-shape entries are skipped.
        state = tmp_path / "farm"
        with temporary_registrations():
            register_attack("liar", _liar, applicable_to=("eff",))
            report = run_farm(QUICK, liar_config(state, max_rounds=2))
            assert report.violations_this_run > 0
            assert main(["fuzz-replay", str(state / "corpus")]) == 0
        out = capsys.readouterr().out
        assert "reproduced" in out
        assert "0 stale" in out

    def test_farm_cli_run_emits_artifact_and_metrics(self, tmp_path, capsys):
        # Full CLI path: --config supplies the farm section, the run
        # exits 1 (violations found), the artifact carries config
        # provenance, and the round streams into top's metrics view.
        state = tmp_path / "farm"
        metrics = tmp_path / "metrics"
        out_dir = tmp_path / "out"
        config = tmp_path / "farm.toml"
        config.write_text(
            "[farm]\nround_trials = 3\nstability_every = 0\n"
            "shrink_limit = 1\n"
        )
        with temporary_registrations():
            register_attack("liar", _liar, applicable_to=("eff",))
            code = main(
                ["farm", "run", "--config", str(config),
                 "--state", str(state), "--seed", "0", "--max-rounds", "1",
                 "--jobs", "1", "--no-resume", "--opt-level", "1",
                 "--attacks", "liar", "--defenses", "eff",
                 "--metrics-dir", str(metrics),
                 "--emit-json", str(out_dir)]
            )
        assert code == 1  # violations found this run
        captured = capsys.readouterr()
        assert "Fuzz farm" in captured.out
        assert "liar" in captured.out

        artifact = json.loads((out_dir / "BENCH_farm.json").read_text())
        meta = artifact["payload"]["meta"]
        assert meta["rounds_this_run"] == 1
        assert meta["trials_this_run"] == 3
        assert meta["violations_this_run"] > 0
        assert meta["config"]["path"] == str(config)
        assert meta["config"]["values"]["farm.round_trials"] == 3

        prom = (metrics / "metrics.prom").read_text()
        assert "repro_farm_rounds_total 1" in prom
        assert "repro_fuzz_trials_total" in prom
        assert "repro_farm_corpus_entries" in prom
        records = [
            json.loads(line)
            for line in (metrics / "spans.jsonl").read_text().splitlines()
        ]
        farm_rounds = [r for r in records if r.get("kind") == "farm_round"]
        assert len(farm_rounds) == 1
        assert farm_rounds[0]["trials"] == 3

        assert main(["top", str(metrics), "--once"]) == 0
        frame = capsys.readouterr().out
        assert "farm: round 1 done, 3 trials" in frame
        assert "hot cell liar|eff|" in frame

        status_code = main(["farm", "status", str(state)])
        status_out = capsys.readouterr().out
        assert status_code == 0
        assert "rounds       : 1" in status_out

    def test_fuzz_replay_flags_stale_entries_exit_1(self, tmp_path, capsys):
        # A corpus entry whose bug has been "fixed" (here: a healthy
        # trial planted as a key-equivalence reproducer) must flip the
        # exit code to 1 and list the stale file.
        corpus = tmp_path / "corpus"
        params = sample_trial_params(0, 0)
        entry = CrashEntry(
            invariant=KEY_EQUIVALENCE,
            detail="planted stale entry",
            trial=dict(params),
            original_trial=dict(params),
            profile=profile_to_dict(QUICK),
            meta={},
        )
        path = write_entry(corpus, entry)
        assert main(["fuzz-replay", str(corpus)]) == 1
        captured = capsys.readouterr()
        assert "NO LONGER REPRODUCES" in captured.out
        assert "1 stale" in captured.out
        assert str(path) in captured.err


class TestTopFarmSection:
    def test_render_includes_farm_lines(self, tmp_path):
        (tmp_path / "run.json").write_text(
            json.dumps(
                {"run_id": "r1", "command": "farm", "started_unix": 100.0}
            )
        )
        record = {
            "kind": "farm_round",
            "run_id": "r1",
            "round": 1,
            "trials": 12,
            "violations": 2,
            "trials_total": 24,
            "violations_total": 3,
            "corpus_entries": 7,
            "cells_covered": 9,
            "n_cells": 30,
            "trials_per_s": 4.0,
            "hot_cells": [["scansat|eff|small", 6, 3]],
            "t": 130.0,
        }
        (tmp_path / "spans.jsonl").write_text(json.dumps(record) + "\n")
        snapshot = load_snapshot(tmp_path)
        assert snapshot.farm_rounds == [record]
        frame = render_top(snapshot, now=140.0)
        assert "farm: round 2 done, 24 trials, 3 violation(s)" in frame
        assert "corpus 7, cells 9/30, 4.0 trials/s" in frame
        assert "hot cell scansat|eff|small: 6 trials, 3 violation(s)" in frame

    def test_render_without_farm_rounds_is_unchanged(self, tmp_path):
        (tmp_path / "run.json").write_text(
            json.dumps({"run_id": "r1", "command": "fuzz"})
        )
        frame = render_top(load_snapshot(tmp_path), now=1.0)
        assert "farm:" not in frame


@pytest.mark.requires_numpy
class TestSigtermResume:
    """The acceptance test: SIGTERM a real farm process mid-run, resume
    it, and demand byte-identical state vs an uninterrupted run."""

    def _spawn(self, state, config, cwd, extra=()):
        command = [
            sys.executable, "-c",
            "import sys; from repro.cli import main; "
            "sys.exit(main(sys.argv[1:]))",
            "farm", "run", "--config", str(config), "--state", str(state),
            "--seed", "0", "--max-rounds", "3", "--jobs", "1",
            "--no-resume", "--opt-level", "1", *extra,
        ]
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            command, cwd=cwd, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )

    def test_sigterm_mid_run_resumes_byte_identically(self, tmp_path):
        config = tmp_path / "farm.toml"
        config.write_text(
            "[farm]\nround_trials = 4\nstability_every = 0\n"
            "shrink_limit = 1\n"
        )
        interrupted = tmp_path / "interrupted"
        reference = tmp_path / "reference"

        # Uninterrupted reference run: 3 rounds straight through.
        process = self._spawn(reference, config, tmp_path)
        assert process.wait(timeout=300) in (0, 1)

        # Interrupted run: SIGTERM as soon as the first checkpoint
        # lands (so the kill hits a later round mid-flight).
        process = self._spawn(interrupted, config, tmp_path)
        state_path = interrupted / "state.json"
        deadline = time.monotonic() + 240
        while time.monotonic() < deadline:
            if state_path.is_file() or process.poll() is not None:
                break
            time.sleep(0.02)
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=300) in (0, 1)

        # Resume to the same lifetime round cap, then compare trees.
        process = self._spawn(interrupted, config, tmp_path)
        assert process.wait(timeout=300) in (0, 1)
        state = json.loads(state_path.read_text())
        assert state["rounds"] == 3
        assert tree_bytes(reference) == tree_bytes(interrupted)
