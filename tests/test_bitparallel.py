"""Bit-parallel packed evaluation must agree with the scalar reference
everywhere it is used: plain simulation, fault detection, and candidate
refinement."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.fault_sim import FaultSimulator, fault_coverage
from repro.atpg.faults import enumerate_faults
from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.transform import extract_combinational_core
from repro.sim.logicsim import (
    BitParallelSimulator,
    CombinationalSimulator,
    broadcast_inputs,
)
from repro.util.bitvec import (
    PACK_WORD_BITS,
    broadcast_bit,
    lane_mask,
    pack_lanes,
    unpack_lanes,
)


def random_core(seed: int, n_flops: int = 5, n_inputs: int = 4, n_outputs: int = 3):
    rng = random.Random(seed)
    config = GeneratorConfig(n_flops=n_flops, n_inputs=n_inputs, n_outputs=n_outputs)
    core, _, _ = extract_combinational_core(
        generate_circuit(config, rng, name="bp")
    )
    return core, rng


class TestPacking:
    def test_roundtrip(self):
        rows = [[1, 0, 1], [0, 0, 1], [1, 1, 0], [0, 1, 1]]
        assert unpack_lanes(pack_lanes(rows), len(rows)) == rows

    def test_empty(self):
        assert pack_lanes([]) == []

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            pack_lanes([[1, 0], [1]])

    def test_broadcast(self):
        assert broadcast_bit(1, 5) == 0b11111
        assert broadcast_bit(0, 5) == 0
        assert lane_mask(0) == 0


class TestAgainstScalarSimulation:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_packed_lanes_match_scalar(self, seed):
        core, rng = random_core(seed)
        scalar = CombinationalSimulator(core)
        packed_sim = BitParallelSimulator(core)
        n_lanes = rng.randint(1, 80)  # deliberately crosses one word
        patterns = [
            {net: rng.randrange(2) for net in core.inputs}
            for _ in range(n_lanes)
        ]
        got = packed_sim.run_patterns(patterns)
        for pattern, outputs in zip(patterns, got):
            assert outputs == scalar.run_outputs(pattern)

    def test_run_packed_all_nets(self):
        core, rng = random_core(11)
        scalar = CombinationalSimulator(core)
        packed_sim = BitParallelSimulator(core)
        patterns = [
            {net: rng.randrange(2) for net in core.inputs} for _ in range(7)
        ]
        packed = {
            net: pack_lanes([[p[net]] for p in patterns])[0]
            for net in core.inputs
        }
        values = packed_sim.run_packed(packed, n_lanes=len(patterns))
        for lane, pattern in enumerate(patterns):
            reference = scalar.run(pattern)
            for net, word in values.items():
                assert (word >> lane) & 1 == reference[net], net

    def test_missing_input_rejected(self):
        core, _ = random_core(3)
        sim = BitParallelSimulator(core)
        with pytest.raises(Exception):
            sim.run_packed({}, n_lanes=1)

    def test_mux_and_constants(self):
        netlist = Netlist("m")
        for net in ("s", "a", "b"):
            netlist.add_input(net)
        netlist.add_gate("y", GateType.MUX, ["s", "a", "b"])
        netlist.add_gate("one", GateType.CONST1, [])
        netlist.add_gate("zero", GateType.CONST0, [])
        for net in ("y", "one", "zero"):
            netlist.add_output(net)
        sim = BitParallelSimulator(netlist)
        # lanes: (s,a,b) over all 8 combinations
        rows = [[(i >> 2) & 1, (i >> 1) & 1, i & 1] for i in range(8)]
        s, a, b = pack_lanes(rows)
        values = sim.run_packed({"s": s, "a": a, "b": b}, n_lanes=8)
        for lane, (sv, av, bv) in enumerate(rows):
            assert (values["y"] >> lane) & 1 == (bv if sv else av)
            assert (values["one"] >> lane) & 1 == 1
            assert (values["zero"] >> lane) & 1 == 0

    def test_broadcast_inputs_helper(self):
        assert broadcast_inputs(["a", "b"], [1, 0], 3) == {"a": 7, "b": 0}


class TestPartialFinalChunk:
    """Batch widths straddling the 64-lane word boundary.

    Regression for the partial-final-word masking: widths 63 and 65
    exercise a lone partial word and a full word followed by a 1-lane
    word, in both the scalar chunk loop (IR forced off) and the numpy
    word engine (IR forced on).
    """

    WIDTHS = (PACK_WORD_BITS - 1, PACK_WORD_BITS, PACK_WORD_BITS + 1)

    def _check(self, force_ir: bool):
        from repro import ir

        core, rng = random_core(21)
        scalar = CombinationalSimulator(core)
        prior = ir.core._FORCED
        ir.set_enabled(force_ir)
        try:
            sim = BitParallelSimulator(core)
            for width in self.WIDTHS:
                patterns = [
                    {net: rng.randrange(2) for net in core.inputs}
                    for _ in range(width)
                ]
                got = sim.run_patterns(patterns)
                assert len(got) == width
                for pattern, outputs in zip(patterns, got):
                    assert outputs == scalar.run_outputs(pattern)
        finally:
            ir.set_enabled(prior)

    def test_scalar_path(self):
        self._check(force_ir=False)

    def test_word_engine_path(self):
        pytest.importorskip("numpy")
        self._check(force_ir=True)


class TestPackedFaultSimulation:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_detection_matches_scalar(self, seed):
        core, rng = random_core(seed, n_flops=4, n_inputs=3, n_outputs=2)
        sim = FaultSimulator(core)
        faults = list(enumerate_faults(core))[:12]
        patterns = [
            {net: rng.randrange(2) for net in core.inputs} for _ in range(9)
        ]
        chunks = sim.pack_patterns(patterns)
        for fault in faults:
            scalar = any(sim.detects(p, fault) for p in patterns)
            assert sim.detection_lanes(chunks, fault) == scalar

    def test_coverage_matches_scalar_definition(self):
        core, rng = random_core(5, n_flops=4, n_inputs=3, n_outputs=2)
        sim = FaultSimulator(core)
        faults = list(enumerate_faults(core))[:10]
        patterns = [
            {net: rng.randrange(2) for net in core.inputs} for _ in range(6)
        ]
        expected = sum(
            1 for f in faults if any(sim.detects(p, f) for p in patterns)
        ) / len(faults)
        assert fault_coverage(core, patterns, faults) == expected

    def test_chunking_beyond_one_word(self):
        core, rng = random_core(9, n_flops=4, n_inputs=3, n_outputs=2)
        sim = FaultSimulator(core)
        patterns = [
            {net: rng.randrange(2) for net in core.inputs}
            for _ in range(PACK_WORD_BITS + 17)
        ]
        chunks = sim.pack_patterns(patterns)
        assert len(chunks) == 2
        assert chunks[0][1] == PACK_WORD_BITS
        assert chunks[1][1] == 17
        fault = next(iter(enumerate_faults(core)))
        scalar = any(sim.detects(p, fault) for p in patterns)
        assert sim.detection_lanes(chunks, fault) == scalar
