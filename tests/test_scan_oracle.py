"""Tests for the protocol-level scan oracle."""

import random

import pytest

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.bench_suite.iscas import s27_netlist
from repro.locking.eff import ConstantKeystream
from repro.locking.effdyn import lock_with_effdyn
from repro.netlist.netlist import NetlistError
from repro.scan.chain import ScanChainSpec
from repro.scan.oracle import ScanOracle
from repro.sim.seqsim import SequentialSimulator
from repro.util.bitvec import random_bits


def make_oracle(key=(0, 0), positions=(0, 1)) -> ScanOracle:
    spec = ScanChainSpec(n_flops=3, keygate_positions=positions)
    return ScanOracle(s27_netlist(), spec, ConstantKeystream(list(key)))


class TestOracleBasics:
    def test_chain_length_must_match(self):
        spec = ScanChainSpec(n_flops=4, keygate_positions=())
        with pytest.raises(NetlistError):
            ScanOracle(s27_netlist(), spec, ConstantKeystream([0]))

    def test_keystream_width_must_cover_gates(self):
        spec = ScanChainSpec(n_flops=3, keygate_positions=(0, 1))
        with pytest.raises(ValueError):
            ScanOracle(s27_netlist(), spec, ConstantKeystream([0]))

    def test_scan_in_length_checked(self):
        oracle = make_oracle()
        with pytest.raises(ValueError):
            oracle.query([0, 1])

    def test_pi_length_checked(self):
        oracle = make_oracle()
        with pytest.raises(ValueError):
            oracle.query([0, 1, 0], [0, 0])

    def test_query_counters(self):
        oracle = make_oracle()
        oracle.query([0, 0, 0])
        oracle.query([1, 0, 1])
        assert oracle.query_count == 2
        assert oracle.shift_cycles == 12

    def test_zero_captures_rejected(self):
        oracle = make_oracle()
        with pytest.raises(ValueError):
            oracle.query([0, 0, 0], n_captures=0)


class TestOracleSemantics:
    def test_zero_key_oracle_equals_plain_capture(self):
        """With an all-zero (transparent) key the oracle is load/capture/unload."""
        oracle = make_oracle(key=(0, 0))
        netlist = s27_netlist()
        rng = random.Random(3)
        for _ in range(10):
            state = random_bits(3, rng)
            pis = random_bits(4, rng)
            response = oracle.query(state, pis)
            sim = SequentialSimulator(netlist)
            sim.set_state_vector(state)
            values = sim.step(dict(zip(netlist.inputs, pis)))
            assert response.scan_out == sim.get_state_vector()
            assert response.primary_outputs == [
                values[net] for net in netlist.outputs
            ]

    def test_unlocked_query_bypasses_obfuscation(self):
        rng = random.Random(5)
        netlist = s27_netlist()
        lock = lock_with_effdyn(netlist, key_bits=2, rng=rng)
        oracle = lock.make_oracle()
        state = [1, 0, 1]
        oracle.query(state)
        clean_response = oracle.unlocked_query(state)
        # Obfuscation must still be enabled afterwards.
        assert oracle.obfuscation_enabled
        # The clean response equals a plain functional capture.
        sim = SequentialSimulator(netlist)
        sim.set_state_vector(state)
        sim.step({net: 0 for net in netlist.inputs})
        assert clean_response.scan_out == sim.get_state_vector()
        # And the locked one differs for this seed/pattern combination
        # (scrambling is live -- checked probabilistically over patterns).
        diffs = 0
        for _ in range(8):
            pattern = random_bits(3, rng)
            if oracle.query(pattern).scan_out != oracle.unlocked_query(pattern).scan_out:
                diffs += 1
        assert diffs > 0

    def test_queries_are_repeatable(self):
        """Power-on reset before each query makes the oracle stateless."""
        rng = random.Random(9)
        netlist = s27_netlist()
        lock = lock_with_effdyn(netlist, key_bits=2, rng=rng)
        oracle = lock.make_oracle()
        pattern = [1, 1, 0]
        first = oracle.query(pattern, [1, 0, 1, 0])
        second = oracle.query(pattern, [1, 0, 1, 0])
        assert first.scan_out == second.scan_out
        assert first.primary_outputs == second.primary_outputs

    def test_multi_capture_advances_state_twice(self):
        oracle = make_oracle(key=(0, 0))
        netlist = s27_netlist()
        state = [1, 1, 0]
        response = oracle.query(state, n_captures=2)
        sim = SequentialSimulator(netlist)
        sim.set_state_vector(state)
        sim.step({net: 0 for net in netlist.inputs})
        sim.step({net: 0 for net in netlist.inputs})
        assert response.scan_out == sim.get_state_vector()

    def test_obfuscated_scan_out_is_xor_overlay(self):
        """Locked minus unlocked responses differ by a pattern-independent
        XOR mask (the keystream overlay), for fixed geometry and seed."""
        rng = random.Random(12)
        config = GeneratorConfig(n_flops=7, n_inputs=3, n_outputs=2)
        netlist = generate_circuit(config, rng, name="ov")
        lock = lock_with_effdyn(netlist, key_bits=3, rng=rng)
        oracle = lock.make_oracle()

        masks = set()
        for _ in range(6):
            pattern = random_bits(7, rng)
            locked = oracle.query(pattern)
            # a' differs from a, so compute the clean response of a' via
            # the overlay relation instead: compare b against b' of the
            # *same* a' -- this requires knowing a', so here we only
            # check determinism of the output-side mask for equal a'.
            masks.add(tuple(locked.scan_out))
        # Weak sanity: responses vary with the pattern (not constant).
        assert len(masks) > 1
