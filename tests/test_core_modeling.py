"""Tests for DynUnlock's combinational modeling -- the paper's core step.

The master invariant: evaluating the model with the *true* seed plugged
into its key inputs must reproduce the oracle's scrambled responses
exactly, for every pattern.  This is precisely the property that makes
the SAT attack sound.
"""

import random

import pytest

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.bench_suite.iscas import s27_netlist, s208_like_netlist
from repro.core.algorithm1 import (
    shift_in_crossings_closed_form,
    shift_out_crossings_closed_form,
)
from repro.core.modeling import (
    build_combinational_model,
    derive_shift_in_crossings,
    derive_shift_out_crossings,
)
from repro.locking.dos import lock_with_dos
from repro.locking.eff import lock_with_eff
from repro.locking.effdyn import lock_with_effdyn
from repro.netlist.validate import validate_netlist
from repro.scan.chain import ScanChainSpec
from repro.sim.logicsim import CombinationalSimulator
from repro.util.bitvec import random_bits


def random_spec(rng: random.Random) -> ScanChainSpec:
    n_flops = rng.randint(2, 14)
    max_gates = n_flops - 1
    n_gates = rng.randint(1, max_gates)
    positions = tuple(sorted(rng.sample(range(max_gates), n_gates)))
    return ScanChainSpec(n_flops=n_flops, keygate_positions=positions)


class TestCrossingDerivation:
    @pytest.mark.parametrize("trial", range(25))
    def test_symbolic_matches_closed_form_shift_in(self, trial):
        rng = random.Random(trial)
        spec = random_spec(rng)
        assert derive_shift_in_crossings(spec) == shift_in_crossings_closed_form(
            spec
        )

    @pytest.mark.parametrize("trial", range(25))
    def test_symbolic_matches_closed_form_shift_out(self, trial):
        rng = random.Random(100 + trial)
        spec = random_spec(rng)
        n_captures = rng.randint(1, 3)
        assert derive_shift_out_crossings(
            spec, n_captures=n_captures
        ) == shift_out_crossings_closed_form(spec, n_captures=n_captures)

    def test_fig1_geometry(self):
        """Paper Fig. 1: s208-style chain, gates after flops 1, 2, 5."""
        spec = ScanChainSpec.from_paper_positions(8, [1, 2, 5])
        crossings = derive_shift_in_crossings(spec)
        # Position 0 crosses nothing; the last position crosses all gates.
        assert crossings[0] == frozenset()
        assert len(crossings[7]) == 3

    def test_static_mode_collapses_cycles(self):
        spec = ScanChainSpec(n_flops=5, keygate_positions=(0, 2))
        crossings = derive_shift_in_crossings(spec, mode="static")
        for crossing in crossings:
            for cycle, _ in crossing:
                assert cycle == 0


class TestModelAgainstOracle:
    def check_model_matches_oracle(self, netlist, lock, oracle, mode, n_captures=1):
        model = build_combinational_model(
            netlist,
            spec=lock.spec,
            taps=getattr(lock, "lfsr_taps", None),
            key_bits=(
                len(lock.seed) if hasattr(lock, "seed") else lock.spec.n_keygates
            ),
            mode=mode,
            n_captures=n_captures,
        )
        validate_netlist(model.netlist)
        sim = CombinationalSimulator(model.netlist)
        key_value = list(lock.seed) if hasattr(lock, "seed") else list(
            lock.secret_key
        )
        rng = random.Random(999)
        for _ in range(8):
            pattern = random_bits(netlist.n_dffs, rng)
            pis = random_bits(len(netlist.inputs), rng)
            response = oracle.query(pattern, pis, n_captures=n_captures)
            inputs = dict(zip(model.a_inputs, pattern))
            inputs.update(zip(model.pi_inputs, pis))
            inputs.update(zip(model.key_inputs, key_value))
            values = sim.run(inputs)
            assert [values[n] for n in model.b_outputs] == response.scan_out
            assert [
                values[n] for n in model.po_outputs
            ] == response.primary_outputs

    @pytest.mark.parametrize("trial", range(8))
    @pytest.mark.requires_numpy
    def test_dynamic_model_matches_oracle_on_random_circuits(self, trial):
        rng = random.Random(5000 + trial)
        config = GeneratorConfig(
            n_flops=rng.randint(3, 12),
            n_inputs=rng.randint(2, 5),
            n_outputs=rng.randint(1, 3),
        )
        netlist = generate_circuit(config, rng, name=f"m{trial}")
        key_bits = rng.randint(2, min(8, netlist.n_dffs - 1))
        lock = lock_with_effdyn(netlist, key_bits=key_bits, rng=rng)
        self.check_model_matches_oracle(
            netlist, lock, lock.make_oracle(), mode="dynamic"
        )

    @pytest.mark.requires_numpy
    def test_dynamic_model_matches_oracle_on_s27(self):
        netlist = s27_netlist()
        lock = lock_with_effdyn(netlist, key_bits=2, rng=random.Random(42))
        self.check_model_matches_oracle(
            netlist, lock, lock.make_oracle(), mode="dynamic"
        )

    @pytest.mark.requires_numpy
    def test_dynamic_model_with_two_captures(self):
        netlist = s27_netlist()
        lock = lock_with_effdyn(netlist, key_bits=2, rng=random.Random(43))
        self.check_model_matches_oracle(
            netlist, lock, lock.make_oracle(), mode="dynamic", n_captures=2
        )

    @pytest.mark.requires_numpy
    def test_dynamic_model_with_three_captures_synthetic(self):
        rng = random.Random(4242)
        config = GeneratorConfig(n_flops=6, n_inputs=3, n_outputs=2)
        netlist = generate_circuit(config, rng, name="cap3")
        lock = lock_with_effdyn(netlist, key_bits=3, rng=rng)
        self.check_model_matches_oracle(
            netlist, lock, lock.make_oracle(), mode="dynamic", n_captures=3
        )

    def test_static_model_matches_eff_oracle(self):
        rng = random.Random(31)
        config = GeneratorConfig(n_flops=9, n_inputs=4, n_outputs=2)
        netlist = generate_circuit(config, rng, name="st")
        lock = lock_with_eff(netlist, key_bits=4, rng=rng)
        self.check_model_matches_oracle(
            netlist, lock, lock.make_oracle(), mode="static"
        )

    @pytest.mark.requires_numpy
    def test_dos_restart_model_matches_dos_oracle(self):
        rng = random.Random(77)
        config = GeneratorConfig(n_flops=8, n_inputs=3, n_outputs=2)
        netlist = generate_circuit(config, rng, name="dos")
        lock = lock_with_dos(netlist, key_bits=4, rng=rng, period_p=1)
        self.check_model_matches_oracle(
            netlist, lock, lock.make_oracle(), mode="dos_restart"
        )

    @pytest.mark.requires_numpy
    def test_dos_with_larger_period(self):
        rng = random.Random(78)
        config = GeneratorConfig(n_flops=8, n_inputs=3, n_outputs=2)
        netlist = generate_circuit(config, rng, name="dosp")
        lock = lock_with_dos(netlist, key_bits=4, rng=rng, period_p=5)
        self.check_model_matches_oracle(
            netlist, lock, lock.make_oracle(), mode="dos_restart"
        )

    @pytest.mark.requires_numpy
    def test_s208_like_fig1_lock(self):
        """The paper's running example: 8 flops, gates after 1, 2 and 5."""
        netlist = s208_like_netlist()
        rng = random.Random(1)
        lock = lock_with_effdyn(
            netlist, key_bits=3, rng=rng, placement="random"
        )
        object.__setattr__  # silence linters; lock.spec is frozen
        lock = type(lock)(
            netlist=netlist,
            spec=ScanChainSpec.from_paper_positions(8, [1, 2, 5]),
            lfsr_taps=lock.lfsr_taps,
            seed=lock.seed,
            secret_key=lock.secret_key,
        )
        self.check_model_matches_oracle(
            netlist, lock, lock.make_oracle(), mode="dynamic"
        )


class TestEncodingEquivalence:
    @pytest.mark.parametrize("trial", range(4))
    @pytest.mark.requires_numpy
    def test_dense_and_unrolled_models_agree(self, trial):
        rng = random.Random(900 + trial)
        config = GeneratorConfig(n_flops=7, n_inputs=3, n_outputs=2)
        netlist = generate_circuit(config, rng, name=f"e{trial}")
        lock = lock_with_effdyn(netlist, key_bits=4, rng=rng)
        dense = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, 4, encoding="dense"
        )
        unrolled = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, 4, encoding="unrolled"
        )
        sim_d = CombinationalSimulator(dense.netlist)
        sim_u = CombinationalSimulator(unrolled.netlist)
        for _ in range(6):
            pattern = random_bits(7, rng)
            pis = random_bits(3, rng)
            seed = random_bits(4, rng)
            inputs_d = dict(zip(dense.a_inputs, pattern))
            inputs_d.update(zip(dense.pi_inputs, pis))
            inputs_d.update(zip(dense.key_inputs, seed))
            inputs_u = dict(zip(unrolled.a_inputs, pattern))
            inputs_u.update(zip(unrolled.pi_inputs, pis))
            inputs_u.update(zip(unrolled.key_inputs, seed))
            out_d = sim_d.run(inputs_d)
            out_u = sim_u.run(inputs_u)
            assert [out_d[n] for n in dense.b_outputs] == [
                out_u[n] for n in unrolled.b_outputs
            ]


class TestModelValidation:
    def test_wrong_flop_count_rejected(self):
        netlist = s27_netlist()
        with pytest.raises(ValueError):
            build_combinational_model(
                netlist, ScanChainSpec(n_flops=5), (0, 1), 2
            )

    def test_dynamic_mode_requires_taps(self):
        netlist = s27_netlist()
        spec = ScanChainSpec(n_flops=3, keygate_positions=(0,))
        with pytest.raises(ValueError):
            build_combinational_model(netlist, spec, None, 1)

    def test_key_width_must_cover_gates(self):
        netlist = s27_netlist()
        spec = ScanChainSpec(n_flops=3, keygate_positions=(0, 1))
        with pytest.raises(ValueError):
            build_combinational_model(netlist, spec, (0,), 1)

    def test_captures_must_be_positive(self):
        netlist = s27_netlist()
        spec = ScanChainSpec(n_flops=3, keygate_positions=(0,))
        with pytest.raises(ValueError):
            build_combinational_model(netlist, spec, (0,), 1, n_captures=0)

    @pytest.mark.requires_numpy
    def test_x_inputs_property_order(self):
        netlist = s27_netlist()
        lock = lock_with_effdyn(netlist, key_bits=2, rng=random.Random(3))
        model = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, 2
        )
        non_key = [
            net for net in model.netlist.inputs if net not in set(model.key_inputs)
        ]
        assert model.x_inputs == non_key
