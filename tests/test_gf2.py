"""Unit and property tests for the GF(2) linear algebra substrate."""

import pytest

np = pytest.importorskip("numpy")  # whole-module skip on the numpy-less leg
from hypothesis import given, settings, strategies as st

from repro.gf2.matrix import GF2Matrix, identity, zeros
from repro.gf2.solve import (
    AffineSystem,
    enumerate_affine_solutions,
    gaussian_eliminate,
    nullspace_basis,
    rank,
    solve_affine,
)


def random_matrix(rng: np.random.Generator, n_rows: int, n_cols: int) -> GF2Matrix:
    return GF2Matrix(rng.integers(0, 2, size=(n_rows, n_cols), dtype=np.uint8))


class TestGF2Matrix:
    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            GF2Matrix([[0, 2]])

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            GF2Matrix(np.zeros(3, dtype=np.uint8))

    def test_identity_is_multiplicative_unit(self):
        rng = np.random.default_rng(0)
        m = random_matrix(rng, 5, 5)
        assert identity(5) @ m == m
        assert m @ identity(5) == m

    def test_addition_is_xor(self):
        a = GF2Matrix([[1, 0], [1, 1]])
        b = GF2Matrix([[1, 1], [0, 1]])
        assert (a + b) == GF2Matrix([[0, 1], [1, 0]])

    def test_self_addition_is_zero(self):
        rng = np.random.default_rng(1)
        m = random_matrix(rng, 4, 6)
        assert (m + m) == zeros(4, 6)

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            zeros(2, 3) @ zeros(2, 3)

    def test_matmul_mod2(self):
        a = GF2Matrix([[1, 1]])
        b = GF2Matrix([[1], [1]])
        assert (a @ b) == zeros(1, 1)  # 1+1 = 0 mod 2

    def test_pow_zero_is_identity(self):
        rng = np.random.default_rng(2)
        m = random_matrix(rng, 4, 4)
        assert m.pow(0) == identity(4)

    def test_pow_matches_repeated_multiplication(self):
        rng = np.random.default_rng(3)
        m = random_matrix(rng, 5, 5)
        expected = identity(5)
        for exponent in range(6):
            assert m.pow(exponent) == expected
            expected = expected @ m

    def test_pow_requires_square(self):
        with pytest.raises(ValueError):
            zeros(2, 3).pow(2)

    def test_mul_vec_matches_matmul(self):
        rng = np.random.default_rng(4)
        m = random_matrix(rng, 4, 7)
        v = list(rng.integers(0, 2, size=7))
        column = GF2Matrix(np.array([v], dtype=np.uint8).T)
        assert m.mul_vec(v) == [int(x) for x in (m @ column).data[:, 0]]

    def test_transpose(self):
        m = GF2Matrix([[1, 0, 1], [0, 1, 1]])
        assert m.transpose() == GF2Matrix([[1, 0], [0, 1], [1, 1]])


class TestGaussianElimination:
    def test_rank_identity(self):
        assert rank(identity(6)) == 6

    def test_rank_zero_matrix(self):
        assert rank(zeros(4, 5)) == 0

    def test_rank_duplicate_rows(self):
        m = GF2Matrix([[1, 1, 0], [1, 1, 0]])
        assert rank(m) == 1

    def test_solve_simple(self):
        a = GF2Matrix([[1, 0], [0, 1]])
        assert solve_affine(a, [1, 0]) == [1, 0]

    def test_solve_inconsistent(self):
        a = GF2Matrix([[1, 1], [1, 1]])
        assert solve_affine(a, [0, 1]) is None

    def test_rhs_length_mismatch(self):
        with pytest.raises(ValueError):
            gaussian_eliminate(identity(3), [1, 0])

    @settings(max_examples=50)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_solution_satisfies_system(self, seed):
        rng = np.random.default_rng(seed)
        n_rows, n_cols = int(rng.integers(1, 8)), int(rng.integers(1, 8))
        a = random_matrix(rng, n_rows, n_cols)
        b = list(rng.integers(0, 2, size=n_rows))
        x = solve_affine(a, b)
        if x is not None:
            assert a.mul_vec(x) == [int(v) for v in b]

    @settings(max_examples=50)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_nullspace_vectors_are_in_kernel(self, seed):
        rng = np.random.default_rng(seed)
        n_rows, n_cols = int(rng.integers(1, 8)), int(rng.integers(1, 8))
        a = random_matrix(rng, n_rows, n_cols)
        for vec in nullspace_basis(a):
            assert a.mul_vec(vec) == [0] * n_rows

    def test_rank_nullity(self):
        rng = np.random.default_rng(9)
        for _ in range(20):
            n_rows, n_cols = int(rng.integers(1, 9)), int(rng.integers(1, 9))
            a = random_matrix(rng, n_rows, n_cols)
            assert rank(a) + len(nullspace_basis(a)) == n_cols


class TestEnumeration:
    def test_enumerates_full_solution_set(self):
        a = GF2Matrix([[1, 1, 0]])
        solutions = list(enumerate_affine_solutions(a, [1]))
        assert len(solutions) == 4  # 2 free variables
        assert len({tuple(s) for s in solutions}) == 4
        for x in solutions:
            assert a.mul_vec(x) == [1]

    def test_inconsistent_yields_nothing(self):
        a = GF2Matrix([[1, 1], [1, 1]])
        assert list(enumerate_affine_solutions(a, [1, 0])) == []

    def test_limit(self):
        a = zeros(1, 10)
        assert len(list(enumerate_affine_solutions(a, [0], limit=16))) == 16


class TestAffineSystem:
    def test_fresh_system_has_full_freedom(self):
        system = AffineSystem(n_vars=5)
        assert system.degrees_of_freedom() == 5
        assert system.candidate_count() == 32

    def test_assignment_reduces_freedom(self):
        system = AffineSystem(n_vars=4)
        system.add_assignment(2, 1)
        assert system.degrees_of_freedom() == 3

    def test_redundant_equation_costs_nothing(self):
        system = AffineSystem(n_vars=4)
        system.add_equation([1, 1, 0, 0], 1)
        system.add_equation([1, 1, 0, 0], 1)
        assert system.degrees_of_freedom() == 3

    def test_contradiction_detected(self):
        system = AffineSystem(n_vars=3)
        system.add_equation([1, 0, 1], 0)
        system.add_equation([1, 0, 1], 1)
        assert not system.is_consistent()
        assert system.candidate_count() == 0

    def test_solutions_satisfy_equations(self):
        system = AffineSystem(n_vars=4)
        system.add_equation([1, 1, 0, 0], 1)
        system.add_equation([0, 0, 1, 1], 0)
        solutions = list(system.solutions())
        assert len(solutions) == 4
        for x in solutions:
            assert (x[0] ^ x[1]) == 1
            assert (x[2] ^ x[3]) == 0

    def test_rejects_bad_equation(self):
        system = AffineSystem(n_vars=3)
        with pytest.raises(ValueError):
            system.add_equation([1, 0], 1)
        with pytest.raises(ValueError):
            system.add_equation([1, 0, 1], 2)
