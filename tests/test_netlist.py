"""Unit tests for the netlist IR and gate library."""

import pytest

from repro.netlist.gates import (
    GATE_ARITY,
    GateType,
    bench_name,
    check_arity,
    evaluate_gate,
)
from repro.netlist.netlist import Gate, NetNamer, Netlist, NetlistError


class TestGateEvaluation:
    def test_and(self):
        assert evaluate_gate(GateType.AND, [1, 1]) == 1
        assert evaluate_gate(GateType.AND, [1, 0]) == 0

    def test_nand(self):
        assert evaluate_gate(GateType.NAND, [1, 1]) == 0
        assert evaluate_gate(GateType.NAND, [0, 1]) == 1

    def test_or(self):
        assert evaluate_gate(GateType.OR, [0, 0]) == 0
        assert evaluate_gate(GateType.OR, [0, 1]) == 1

    def test_nor(self):
        assert evaluate_gate(GateType.NOR, [0, 0]) == 1
        assert evaluate_gate(GateType.NOR, [1, 0]) == 0

    def test_xor_multi_input(self):
        assert evaluate_gate(GateType.XOR, [1, 1, 1]) == 1
        assert evaluate_gate(GateType.XOR, [1, 1, 0]) == 0

    def test_xnor(self):
        assert evaluate_gate(GateType.XNOR, [1, 0]) == 0
        assert evaluate_gate(GateType.XNOR, [1, 1]) == 1

    def test_not_buf(self):
        assert evaluate_gate(GateType.NOT, [0]) == 1
        assert evaluate_gate(GateType.BUF, [1]) == 1

    def test_mux(self):
        # MUX(sel, in0, in1)
        assert evaluate_gate(GateType.MUX, [0, 1, 0]) == 1
        assert evaluate_gate(GateType.MUX, [1, 1, 0]) == 0

    def test_constants(self):
        assert evaluate_gate(GateType.CONST0, []) == 0
        assert evaluate_gate(GateType.CONST1, []) == 1

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.NOT, [0, 1])
        with pytest.raises(ValueError):
            evaluate_gate(GateType.AND, [1])
        with pytest.raises(ValueError):
            evaluate_gate(GateType.MUX, [1, 0])

    def test_arity_table_covers_all_types(self):
        for gtype in GateType:
            assert gtype in GATE_ARITY
            required = GATE_ARITY[gtype]
            check_arity(gtype, 2 if required is None else required)

    def test_bench_name_spelling(self):
        assert bench_name(GateType.BUF) == "BUFF"
        assert bench_name(GateType.NAND) == "NAND"


class TestNetlistConstruction:
    def test_basic_construction(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_gate("y", GateType.AND, ["a", "b"])
        netlist.add_output("y")
        assert netlist.n_gates == 1
        assert netlist.inputs == ["a", "b"]
        assert netlist.outputs == ["y"]

    def test_duplicate_driver_rejected(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_gate("a", GateType.CONST0, [])

    def test_duplicate_dff_rejected(self):
        netlist = Netlist("t")
        netlist.add_dff("q", "d")
        with pytest.raises(NetlistError):
            netlist.add_dff("q", "d2")

    def test_duplicate_output_marker_rejected(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_output("a")
        with pytest.raises(NetlistError):
            netlist.add_output("a")

    def test_forward_references_allowed(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate("y", GateType.NOT, ["z"])  # z defined later
        netlist.add_gate("z", GateType.NOT, ["a"])
        order = [g.output for g in netlist.topological_gates()]
        assert order.index("z") < order.index("y")

    def test_dff_q_nets_order_is_insertion_order(self):
        netlist = Netlist("t")
        netlist.add_dff("q1", "d1")
        netlist.add_dff("q0", "d0")
        assert netlist.dff_q_nets() == ["q1", "q0"]
        assert netlist.dff_d_nets() == ["d1", "d0"]

    def test_combinational_cycle_detected(self):
        netlist = Netlist("t")
        netlist.add_gate("x", GateType.NOT, ["y"])
        netlist.add_gate("y", GateType.NOT, ["x"])
        with pytest.raises(NetlistError):
            netlist.topological_gates()

    def test_cycle_through_dff_is_fine(self):
        netlist = Netlist("t")
        netlist.add_dff("q", "d")
        netlist.add_gate("d", GateType.NOT, ["q"])
        assert len(netlist.topological_gates()) == 1

    def test_driver_of(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_dff("q", "a")
        netlist.add_gate("y", GateType.NOT, ["q"])
        assert netlist.driver_of("a") == "input"
        assert isinstance(netlist.driver_of("y"), Gate)
        assert netlist.driver_of("nothere") is None

    def test_stats(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate("y", GateType.NOT, ["a"])
        netlist.add_dff("q", "y")
        stats = netlist.stats()
        assert stats["gates"] == 1
        assert stats["dffs"] == 1
        assert stats["gate_NOT"] == 1

    def test_fanout_map(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate("x", GateType.NOT, ["a"])
        netlist.add_gate("y", GateType.NOT, ["a"])
        fanout = netlist.fanout_map()
        assert {g.output for g in fanout["a"]} == {"x", "y"}

    def test_topo_cache_invalidated_by_mutation(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate("x", GateType.NOT, ["a"])
        assert len(netlist.topological_gates()) == 1
        netlist.add_gate("y", GateType.NOT, ["x"])
        assert len(netlist.topological_gates()) == 2

    def test_fanout_map_is_cached_until_mutation(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate("x", GateType.NOT, ["a"])
        first = netlist.fanout_map()
        assert netlist.fanout_map() is first  # settled netlist: cached
        netlist.add_gate("y", GateType.NOT, ["a"])
        second = netlist.fanout_map()
        assert second is not first
        assert {g.output for g in second["a"]} == {"x", "y"}

    def test_fanout_cache_invalidated_by_add_dff(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate("x", GateType.NOT, ["a"])
        first = netlist.fanout_map()
        netlist.add_dff(q="q0", d="x")
        assert netlist.fanout_map() is not first


class TestNetNamer:
    def test_avoids_existing_nets(self):
        netlist = Netlist("t")
        netlist.add_input("p_0")
        namer = NetNamer(netlist, prefix="p_")
        fresh = namer.fresh()
        assert fresh != "p_0"

    def test_never_repeats(self):
        namer = NetNamer(Netlist("t"), prefix="n")
        names = {namer.fresh() for _ in range(100)}
        assert len(names) == 100
