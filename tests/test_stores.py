"""Cross-backend conformance suite for :mod:`repro.runner.stores`.

Every guarantee the original single-backend ``ResultStore`` regressions
pinned -- round-trip byte-identity, corruption/truncation degrading to
a miss, foreign-version pruning, never-stored invalidation conjuring
nothing -- is re-stated here *parametrized over all three backends*, so
a new backend is correct-by-construction once this file passes.  On top
of that: LRU garbage-collection policy units, hypothesis property tests
(round-trip identity for arbitrary JSON-safe payloads; GC never evicts
below the survivor set nor out of age order), byte-for-byte migration
between every ordered backend pair, and the acceptance pins that
``dynunlock matrix`` / ``dynunlock fuzz`` produce byte-identical rows
and artifacts no matter which backend serves the cache.
"""

import itertools
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.reports.profiles import ExperimentProfile
from repro.runner.artifacts import load_artifact
from repro.runner.spec import JobSpec
from repro.runner.stores import (
    BACKENDS,
    JsonFileStore,
    ShardedJsonStore,
    SqliteStore,
    encode_entry,
    entry_key,
    migrate,
    open_store,
    resolve_backend,
)
from repro.runner.stores import codecs

ALL_BACKENDS = sorted(BACKENDS)
VERSION = "v" * 20

TINY = ExperimentProfile(
    name="tiny",
    scale=64,
    key_bits=6,
    n_seeds=1,
    timeout_s=120.0,
    table3_key_sizes=(6,),
)


def spec_of(payload="x", **extra):
    return JobSpec.make("selfcheck", TINY, payload=payload, **extra)


@pytest.fixture(params=ALL_BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def store(backend, tmp_path):
    with open_store(tmp_path / "cache", backend=backend, version=VERSION) as s:
        yield s


def sibling_store(store, *, version=VERSION):
    """Another handle on the same root/backend (a different version's view)."""
    return open_store(store.root, backend=store.name, version=version)


def corrupt_storage(store, spec, data: bytes) -> None:
    """Overwrite ``spec``'s payload with raw garbage *at the storage layer*."""
    if isinstance(store, SqliteStore):
        conn = store._connect(create=True)
        with conn:
            conn.execute(
                "UPDATE cells SET payload = ?, codec = 'zlib'"
                " WHERE spec_hash = ?",
                (data, entry_key(spec)),
            )
    else:
        store.path_for(spec).write_bytes(data)


class TestConformance:
    """The legacy ResultStore regressions, over every backend."""

    def test_miss_then_hit(self, store):
        spec = spec_of()
        assert store.get(spec) is None
        store.put(spec, {"value": 42}, duration_s=0.1)
        assert store.get(spec) == {"value": 42}
        assert len(store) == 1

    def test_profile_change_is_a_miss(self, store):
        quick = ExperimentProfile(
            name="tiny2",
            scale=64,
            key_bits=6,
            n_seeds=1,
            timeout_s=120.0,
            table3_key_sizes=(6,),
        )
        store.put(JobSpec.make("e", TINY, x=1), {"value": 1})
        assert store.get(JobSpec.make("e", quick, x=1)) is None

    def test_code_version_change_is_a_miss(self, store):
        store.put(spec_of(), {"value": 1})
        other = sibling_store(store, version="b" * 20)
        assert other.get(spec_of()) is None
        assert len(other) == 0
        other.close()

    def test_invalidate(self, store):
        spec = spec_of()
        store.put(spec, {"value": 1})
        assert store.invalidate(spec)
        assert store.get(spec) is None
        assert not store.invalidate(spec)

    def test_corrupt_storage_degrades_to_miss(self, store):
        spec = spec_of()
        store.put(spec, {"value": 1})
        corrupt_storage(store, spec, b"{not json")
        assert store.get(spec) is None

    def test_truncated_entry_degrades_to_miss(self, store):
        spec = spec_of()
        store.put(spec, {"value": 1})
        intact = encode_entry(spec, {"value": 1})
        # Simulate a torn write: every strict prefix must read as a miss.
        for cut in (0, 1, len(intact) // 2, len(intact) - 1):
            store.put_raw(spec.experiment, entry_key(spec), intact[:cut])
            assert store.get(spec) is None, f"cut at {cut} bytes"
        store.put_raw(spec.experiment, entry_key(spec), intact)
        assert store.get(spec) == {"value": 1}

    def test_truncated_storage_degrades_to_miss(self, store):
        # Same torn-write drill, but at the storage layer (compressed
        # blob / file bytes), not the logical entry bytes.
        spec = spec_of()
        store.put(spec, {"value": 1})
        corrupt_storage(store, spec, b"")
        assert store.get(spec) is None

    def test_tampered_spec_degrades_to_miss(self, store):
        spec = spec_of()
        store.put(spec, {"value": 1})
        entry = json.loads(encode_entry(spec, {"value": 1}))
        entry["spec"] = "something else"
        store.put_raw(
            spec.experiment, entry_key(spec), json.dumps(entry).encode()
        )
        assert store.get(spec) is None

    def test_non_dict_json_degrades_to_miss(self, store):
        spec = spec_of()
        store.put(spec, {"value": 1})
        store.put_raw(spec.experiment, entry_key(spec), b"[1, 2]")
        assert store.get(spec) is None

    def test_non_dict_result_degrades_to_miss(self, store):
        spec = spec_of()
        entry = json.loads(encode_entry(spec, {"value": 1}))
        entry["result"] = [1, 2, 3]
        store.put_raw(
            spec.experiment, entry_key(spec), json.dumps(entry).encode()
        )
        assert store.get(spec) is None

    def test_prune_drops_other_versions_only(self, store):
        old = sibling_store(store, version="a" * 20)
        old.put(spec_of(), {"value": 1})
        old.close()
        store.put(spec_of(), {"value": 2})
        assert store.prune() >= 1
        assert store.get(spec_of()) == {"value": 2}
        reopened = sibling_store(store, version="a" * 20)
        assert reopened.get(spec_of()) is None
        reopened.close()

    def test_never_stored_invalidate_conjures_nothing(self, backend, tmp_path):
        root = tmp_path / "never"
        store = open_store(root, backend=backend, version=VERSION)
        assert store.invalidate(spec_of()) is False
        store.close()
        # Must not conjure directories or database files as a side effect.
        assert not root.exists()

    def test_read_only_probes_conjure_nothing(self, backend, tmp_path):
        root = tmp_path / "never"
        store = open_store(root, backend=backend, version=VERSION)
        assert store.get(spec_of()) is None
        assert len(store) == 0
        assert store.prune() == 0
        assert list(store.iterate()) == []
        assert store.gc(0).n_before == 0
        assert store.stats()["entries"] == 0
        store.close()
        assert not root.exists()

    def test_round_trip_bytes_are_canonical(self, store):
        spec = spec_of()
        store.put(spec, {"value": 7}, duration_s=1.5)
        entries = list(store.iterate())
        assert len(entries) == 1
        assert entries[0].raw == encode_entry(spec, {"value": 7}, duration_s=1.5)
        assert entries[0].experiment == spec.experiment
        assert entries[0].key == entry_key(spec)

    def test_iterate_order_is_deterministic(self, store):
        specs = [spec_of(payload=i) for i in range(5)]
        for index, spec in enumerate(specs):
            store.put(spec, {"value": index})
        first = [(e.experiment, e.key) for e in store.iterate()]
        second = [(e.experiment, e.key) for e in store.iterate()]
        assert first == second == sorted(first)

    def test_stats_shape(self, store):
        store.put(spec_of(), {"value": 1})
        stats = store.stats()
        assert stats["backend"] == store.name
        assert stats["version"] == VERSION
        assert stats["entries"] == 1
        assert stats["stored_bytes"] > 0
        assert stats["experiments"] == ["selfcheck"]


class TestSqliteSpecifics:
    """Per-row codec bookkeeping (mixed caches must read back correctly)."""

    def make(self, tmp_path):
        return SqliteStore(tmp_path / "cache", version=VERSION)

    def test_codec_recorded_per_row(self, tmp_path):
        store = self.make(tmp_path)
        store.put(spec_of(), {"value": 1})
        assert store.stats()["codecs"] == {codecs.preferred_codec(): 1}

    def test_mixed_codecs_read_back(self, tmp_path):
        store = self.make(tmp_path)
        zlib_spec, raw_spec = spec_of(payload="a"), spec_of(payload="b")
        store.put(zlib_spec, {"value": 1})
        codec, blob = codecs.encode_blob(
            encode_entry(raw_spec, {"value": 2}), "raw"
        )
        conn = store._connect(create=True)
        with conn:
            conn.execute(
                "INSERT INTO cells VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (VERSION, raw_spec.experiment, entry_key(raw_spec), codec,
                 blob, len(blob), len(blob), 1.0),
            )
        assert store.get(zlib_spec) == {"value": 1}
        assert store.get(raw_spec) == {"value": 2}
        assert set(store.stats()["codecs"]) == {codecs.preferred_codec(), "raw"}

    def test_undecodable_codec_degrades_to_miss(self, tmp_path, monkeypatch):
        # A cache written where zstandard imported, read where it does
        # not: the zstd rows degrade to misses instead of crashing.
        store = self.make(tmp_path)
        spec = spec_of()
        store.put(spec, {"value": 1})
        conn = store._connect(create=True)
        with conn:
            conn.execute("UPDATE cells SET codec = 'zstd'")
        monkeypatch.setattr(codecs, "zstandard", None)
        assert store.get(spec) is None

    def test_foreign_db_file_degrades_to_miss(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        (root / SqliteStore.DB_FILENAME).write_bytes(b"definitely not sqlite")
        store = SqliteStore(root, version=VERSION)
        assert store.get(spec_of()) is None
        assert len(store) == 0
        assert store.prune() == 0


class TestBackendResolution:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        assert resolve_backend("sharded") == "sharded"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        assert resolve_backend() == "sqlite"

    def test_empty_env_falls_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "")
        assert resolve_backend() == "json"

    def test_unknown_backend_is_an_error(self):
        with pytest.raises(ValueError, match="unknown cache backend"):
            resolve_backend("lmdb")

    def test_open_store_constructs_the_right_class(self, tmp_path):
        classes = {"json": JsonFileStore, "sharded": ShardedJsonStore,
                   "sqlite": SqliteStore}
        for name, cls in classes.items():
            store = open_store(tmp_path / name, backend=name, version=VERSION)
            assert type(store) is cls
            store.close()

    def test_env_drives_cli_store_selection(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        root = tmp_path / "cache"
        assert main(["fuzz", "--trials", "2", "--seed", "0",
                     "--cache-dir", str(root)]) == 0
        assert (root / SqliteStore.DB_FILENAME).is_file()


class TestMigration:
    """`cache migrate` must preserve every entry byte-for-byte."""

    def populate(self, store):
        specs = [spec_of(payload=i, shard=i % 3) for i in range(6)]
        for index, spec in enumerate(specs):
            store.put(spec, {"value": index, "blob": "xy" * 40},
                      duration_s=0.25 * index)
        return {(e.experiment, e.key): (e.raw, e.mtime)
                for e in store.iterate()}

    @pytest.mark.parametrize(
        "src_name,dst_name",
        [(a, b) for a, b in itertools.product(ALL_BACKENDS, ALL_BACKENDS)
         if a != b],
    )
    def test_every_ordered_pair_is_byte_identical(
        self, tmp_path, src_name, dst_name
    ):
        src = open_store(tmp_path / "src", backend=src_name, version=VERSION)
        baseline = self.populate(src)
        dst = open_store(tmp_path / "dst", backend=dst_name, version=VERSION)
        assert migrate(src, dst) == len(baseline)
        migrated = {(e.experiment, e.key): (e.raw, e.mtime)
                    for e in dst.iterate()}
        assert {k: raw for k, (raw, _) in migrated.items()} == {
            k: raw for k, (raw, _) in baseline.items()
        }
        # LRU order survives: mtimes are carried over (file systems may
        # round, so compare to microsecond precision).
        for key, (_, mtime) in baseline.items():
            assert migrated[key][1] == pytest.approx(mtime, abs=1e-5)
        # And the migrated cache actually *hits*.
        assert dst.get(spec_of(payload=0, shard=0)) is not None
        src.close()
        dst.close()

    def test_round_trip_through_every_backend_returns_home(self, tmp_path):
        first = open_store(tmp_path / "a", backend="json", version=VERSION)
        baseline = self.populate(first)
        chain = [first]
        for index, name in enumerate(["sqlite", "sharded", "json"]):
            nxt = open_store(tmp_path / f"hop{index}", backend=name,
                             version=VERSION)
            migrate(chain[-1], nxt)
            chain.append(nxt)
        final = {(e.experiment, e.key): e.raw for e in chain[-1].iterate()}
        assert final == {k: raw for k, (raw, _) in baseline.items()}
        for store in chain:
            store.close()


class TestGarbageCollection:
    """LRU-by-mtime, survivor-set semantics, deterministic ties."""

    def seed(self, store, sizes_ages):
        for index, (size, age) in enumerate(sizes_ages):
            store.put_raw("gc", f"{index:032x}", b"e" * size, mtime=float(age))

    def test_evicts_oldest_first(self, store):
        self.seed(store, [(10, 1), (10, 2), (10, 3)])
        metas = {m.key: m for m in store._entries()}
        per_entry = metas[f"{0:032x}"].nbytes
        report = store.gc(2 * per_entry)
        assert report.n_evicted == 1
        assert report.evicted == [("gc", f"{0:032x}")]  # the oldest
        assert len(store) == 2

    def test_one_oversized_newest_entry_evicts_everything(self, store):
        self.seed(store, [(500, 3), (10, 2), (10, 1)])
        newest = max(store._entries(), key=lambda m: m.mtime)
        # A bound the newest entry alone overflows: LRU order forbids
        # skipping it to keep older, smaller entries, so nothing stays.
        report = store.gc(newest.nbytes - 1)
        assert report.n_evicted == report.n_before == 3
        assert len(store) == 0

    def test_zero_bound_empties_the_store(self, store):
        self.seed(store, [(10, 1), (10, 2)])
        assert store.gc(0).n_evicted == 2
        assert len(store) == 0

    def test_dry_run_deletes_nothing(self, store):
        self.seed(store, [(10, 1), (10, 2)])
        report = store.gc(0, dry_run=True)
        assert report.n_evicted == 2 and report.dry_run
        assert len(store) == 2

    def test_everything_fits_evicts_nothing(self, store):
        self.seed(store, [(10, 1), (10, 2)])
        report = store.gc(10**9)
        assert report.n_evicted == 0
        assert report.bytes_after == report.bytes_before
        assert len(store) == 2

    def test_age_ties_break_deterministically(self, store):
        self.seed(store, [(10, 5), (10, 5), (10, 5)])
        first = store.gc(10**9, dry_run=True)
        assert first.n_evicted == 0
        metas = sorted(store._entries(), key=lambda m: (-m.mtime, m.experiment, m.key))
        per_entry = metas[0].nbytes
        report = store.gc(per_entry, dry_run=True)
        # Same mtime everywhere: the survivor must be the (experiment,
        # key)-smallest, every time.
        assert report.evicted == [(m.experiment, m.key) for m in metas[1:]]


# -- hypothesis property suites ---------------------------------------------

_SCALARS = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=12)
)
_JSON_VALUES = st.recursive(
    _SCALARS,
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=6), children, max_size=3),
    max_leaves=10,
)
_RESULTS = st.dictionaries(st.text(max_size=8), _JSON_VALUES, max_size=4)

_spec_counter = itertools.count()


class TestRoundTripProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(result=_RESULTS, duration=st.none() | st.floats(0, 1e6))
    def test_round_trip_is_identity_on_every_backend(
        self, store, result, duration
    ):
        spec = spec_of(payload=next(_spec_counter))
        store.put(spec, result, duration_s=duration)
        assert store.get(spec) == result


class TestGCProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        sizes_ages=st.lists(
            st.tuples(st.integers(1, 60), st.integers(0, 40)), max_size=10
        ),
        bound=st.integers(0, 400),
    )
    def test_gc_keeps_exactly_the_survivor_set(
        self, backend, tmp_path_factory, sizes_ages, bound
    ):
        root = tmp_path_factory.mktemp("gcprop")
        with open_store(root, backend=backend, version=VERSION) as store:
            for index, (size, age) in enumerate(sizes_ages):
                store.put_raw(
                    "gc", f"{index:032x}", b"p" * size, mtime=float(age)
                )
            metas = sorted(
                store._entries(), key=lambda m: (-m.mtime, m.experiment, m.key)
            )
            kept = 0
            expected_survivors = []
            overflowed = False
            for meta in metas:  # the policy, restated independently
                if overflowed or kept + meta.nbytes > bound:
                    overflowed = True
                else:
                    kept += meta.nbytes
                    expected_survivors.append(meta)
            report = store.gc(bound)
            remaining = sorted(
                store._entries(), key=lambda m: (-m.mtime, m.experiment, m.key)
            )
            # 1. Exactly the survivor set remains -- GC never evicts
            #    below it and never spares anything older.
            assert [(m.experiment, m.key) for m in remaining] == [
                (m.experiment, m.key) for m in expected_survivors
            ]
            # 2. The survivors respect the bound.
            assert sum(m.nbytes for m in remaining) <= bound
            # 3. No evicted entry is newer than any survivor.
            if report.evicted and remaining:
                newest_evicted = max(
                    m.mtime for m in metas
                    if (m.experiment, m.key) in set(report.evicted)
                )
                assert newest_evicted <= min(m.mtime for m in remaining)
            # 4. The report's accounting matches reality.
            assert report.n_evicted == len(metas) - len(remaining)
            assert report.bytes_after == sum(m.nbytes for m in remaining)


# -- acceptance: identical grid/fuzz output across backends ------------------


class TestCrossBackendRuns:
    """Backend choice must never change what a run computes or emits."""

    MATRIX_ARGS = [
        "matrix", "--attacks", "scansat", "--defenses", "eff",
        "--benchmarks", "s5378", "--profile", "quick", "--no-check-paper",
    ]

    def _artifact(self, path):
        data = load_artifact(path)
        return data["headers"], data["rows"], data["title"]

    def test_matrix_rows_and_artifacts_identical_across_backends(
        self, tmp_path, capsys
    ):
        # Compute the grid once (json backend), migrate the cache into
        # every other backend, then replay: rows and artifacts -- time
        # columns included -- must be byte-identical no matter which
        # backend serves the cells.
        roots = {name: tmp_path / f"cache-{name}" for name in ALL_BACKENDS}
        outs = {name: tmp_path / f"out-{name}" for name in ALL_BACKENDS}
        seed_args = self.MATRIX_ARGS + [
            "--cache-dir", str(roots["json"]), "--cache-backend", "json",
        ]
        assert main(seed_args) == 0
        capsys.readouterr()
        for name in ALL_BACKENDS:
            if name != "json":
                assert main([
                    "cache", "migrate", "--cache-dir", str(roots["json"]),
                    "--cache-backend", "json", "--to", name,
                    "--to-dir", str(roots[name]),
                ]) == 0
        capsys.readouterr()
        tables, artifacts, verdicts = {}, {}, {}
        for name in ALL_BACKENDS:
            argv = self.MATRIX_ARGS + [
                "--cache-dir", str(roots[name]), "--cache-backend", name,
                "--emit-json", str(outs[name]),
            ]
            assert main(argv) == 0
            tables[name] = capsys.readouterr().out
            artifact = load_artifact(outs[name] / "BENCH_matrix.json")
            assert artifact["meta"]["n_computed"] == 0
            assert artifact["meta"]["n_cached"] == artifact["meta"]["n_jobs_total"]
            artifacts[name] = self._artifact(outs[name] / "BENCH_matrix.json")
            verdicts[name] = artifact["meta"]["verdicts"]
        assert tables["json"] == tables["sharded"] == tables["sqlite"]
        assert artifacts["json"] == artifacts["sharded"] == artifacts["sqlite"]
        assert verdicts["json"] == verdicts["sharded"] == verdicts["sqlite"]

    @pytest.mark.requires_numpy
    def test_fuzz_rows_and_artifacts_identical_across_backends(
        self, tmp_path, capsys
    ):
        # Fuzz rows carry no wall-clock fields, so even *freshly
        # computed* campaigns must emit identical bytes per backend.
        tables, artifacts = {}, {}
        for name in ALL_BACKENDS:
            out = tmp_path / f"out-{name}"
            argv = [
                "fuzz", "--trials", "5", "--seed", "2",
                "--cache-dir", str(tmp_path / f"cache-{name}"),
                "--cache-backend", name, "--emit-json", str(out),
            ]
            assert main(argv) == 0
            tables[name] = capsys.readouterr().out
            data = load_artifact(out / "BENCH_fuzz.json")
            artifacts[name] = (
                data["headers"], data["rows"], data["meta"]["violations"]
            )
        assert tables["json"] == tables["sharded"] == tables["sqlite"]
        assert artifacts["json"] == artifacts["sharded"] == artifacts["sqlite"]


class TestFingerprintSharing:
    def test_source_walk_runs_once_no_matter_how_many_stores_open(
        self, tmp_path, monkeypatch
    ):
        # The code-version fingerprint reads every file under src/repro;
        # opening N stores (any mix of backends) must hash the tree at
        # most once per process, not once per store.
        import repro.runner.spec as spec_mod

        real_walk = spec_mod._fingerprint_source_tree
        calls = []

        def counting_walk(root):
            calls.append(root)
            return real_walk(root)

        monkeypatch.setattr(spec_mod, "_fingerprint_source_tree", counting_walk)
        monkeypatch.setattr(spec_mod, "_CODE_VERSION", None)
        first = spec_mod.code_version()
        stores = [
            open_store(tmp_path / name, backend=name) for name in ALL_BACKENDS
        ]
        try:
            assert all(s.version == first[:20] for s in stores)
        finally:
            for s in stores:
                s.close()
        assert len(calls) == 1


class TestStoreBenchCommand:
    def test_emits_gateable_artifact(self, tmp_path, capsys):
        assert main([
            "store-bench", "--entries", "40", "--payload-bytes", "128",
            "--emit-json", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Result-store head-to-head" in out
        data = load_artifact(tmp_path / "BENCH_store.json")
        assert [row[0] for row in data["rows"]] == ALL_BACKENDS
        meta = data["meta"]
        assert meta["default_backend"] == "json"
        assert meta["default_total_s"] > 0
        for name in ALL_BACKENDS:
            assert meta["backends"][name]["entries"] == 40

    def test_workload_is_deterministic(self):
        from repro.runner.stores.bench import synthetic_workload

        first = synthetic_workload(10, 256, seed=4)
        second = synthetic_workload(10, 256, seed=4)
        assert [(s.spec_hash, r) for s, r in first] == [
            (s.spec_hash, r) for s, r in second
        ]
