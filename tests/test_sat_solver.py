"""Tests for the CDCL solver: correctness against brute force, classic
hard instances, incrementality, assumptions, and enumeration."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.cnf import Cnf
from repro.sat.enumerate import count_models, enumerate_models
from repro.sat.solver import CdclSolver, _luby


def brute_force_satisfiable(cnf: Cnf) -> bool:
    for bits in itertools.product([0, 1], repeat=cnf.n_vars):
        assignment = [0] + list(bits)
        if cnf.evaluate(assignment):
            return True
    return False


def random_cnf(rng: random.Random, n_vars: int, n_clauses: int, width: int = 3) -> Cnf:
    cnf = Cnf(n_vars)
    for _ in range(n_clauses):
        clause_vars = rng.sample(range(1, n_vars + 1), min(width, n_vars))
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in clause_vars])
    return cnf


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert CdclSolver().solve().satisfiable is True

    def test_unit_clause(self):
        solver = CdclSolver()
        solver.add_clause([3])
        result = solver.solve()
        assert result.satisfiable is True
        assert result.model[3] == 1

    def test_contradictory_units(self):
        solver = CdclSolver()
        solver.add_clause([1])
        assert solver.add_clause([-1]) is False
        assert solver.solve().satisfiable is False

    def test_tautology_ignored(self):
        solver = CdclSolver()
        solver.add_clause([1, -1])
        assert solver.solve().satisfiable is True

    def test_duplicate_literals_collapse(self):
        solver = CdclSolver()
        solver.add_clause([2, 2, 2])
        result = solver.solve()
        assert result.model[2] == 1

    def test_simple_implication_chain(self):
        solver = CdclSolver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        result = solver.solve()
        assert result.model[1] == result.model[2] == result.model[3] == 1

    def test_model_satisfies_formula(self):
        rng = random.Random(0)
        cnf = random_cnf(rng, 20, 60)
        result = CdclSolver(cnf).solve()
        if result.satisfiable:
            assert cnf.evaluate(result.model)


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_3sat_agrees_with_brute_force(self, seed):
        rng = random.Random(seed)
        n_vars = rng.randint(3, 9)
        n_clauses = rng.randint(1, 35)
        cnf = random_cnf(rng, n_vars, n_clauses)
        expected = brute_force_satisfiable(cnf)
        result = CdclSolver(cnf).solve()
        assert result.satisfiable is expected
        if expected:
            assert cnf.evaluate(result.model)


def pigeonhole_cnf(holes: int) -> Cnf:
    """PHP(holes+1, holes): classically UNSAT and resolution-hard."""
    pigeons = holes + 1
    cnf = Cnf()
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[(p, h)] = cnf.new_var()
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


class TestHardInstances:
    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_pigeonhole_unsat(self, holes):
        result = CdclSolver(pigeonhole_cnf(holes)).solve()
        assert result.satisfiable is False

    def test_xor_chain_unsat(self):
        """x1^x2=1, x2^x3=1, ..., closing the cycle inconsistently."""
        cnf = Cnf()
        n = 10
        vars_ = cnf.new_vars(n)
        for i in range(n):
            a, b = vars_[i], vars_[(i + 1) % n]
            parity = 1 if i < n - 1 else 0  # odd cycle sum -> UNSAT
            if parity:
                cnf.add_clause([a, b])
                cnf.add_clause([-a, -b])
            else:
                cnf.add_clause([a, -b])
                cnf.add_clause([-a, b])
        # Sum of parities around the cycle is odd => unsatisfiable.
        assert CdclSolver(cnf).solve().satisfiable is False


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[-1])
        assert result.satisfiable is True
        assert result.model[2] == 1

    def test_conflicting_assumptions(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1, -2]).satisfiable is False
        # Solver remains usable and the formula is still satisfiable.
        assert solver.solve().satisfiable is True

    def test_assumption_contradicting_unit(self):
        solver = CdclSolver()
        solver.add_clause([5])
        assert solver.solve(assumptions=[-5]).satisfiable is False
        assert solver.solve(assumptions=[5]).satisfiable is True


class TestIncremental:
    def test_adding_clauses_between_solves(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve().satisfiable is True
        solver.add_clause([-1])
        result = solver.solve()
        assert result.satisfiable is True
        assert result.model[2] == 1
        solver.add_clause([-2])
        assert solver.solve().satisfiable is False

    def test_narrowing_to_unsat_then_stays_unsat(self):
        solver = CdclSolver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2])
        assert solver.solve().satisfiable is False
        assert solver.solve().satisfiable is False


class TestBudgets:
    def test_max_conflicts_returns_unknown(self):
        result = CdclSolver(pigeonhole_cnf(7)).solve(max_conflicts=5)
        assert result.satisfiable is None

    def test_solver_usable_after_budget_exhaustion(self):
        solver = CdclSolver(pigeonhole_cnf(5))
        assert solver.solve(max_conflicts=2).satisfiable is None
        assert solver.solve().satisfiable is False


class TestEnumeration:
    def test_enumerate_all_projections(self):
        solver = CdclSolver()
        a, b, c = (solver.new_var() for _ in range(3))
        solver.add_clause([a, b])  # c is free
        models = list(enumerate_models(solver, [a, b]))
        assert sorted(tuple(m) for m in models) == [(0, 1), (1, 0), (1, 1)]

    def test_enumerate_respects_limit(self):
        solver = CdclSolver()
        for _ in range(4):
            solver.new_var()
        models = list(enumerate_models(solver, [1, 2, 3, 4], limit=5))
        assert len(models) == 5

    def test_count_models(self):
        solver = CdclSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([-a, -b])
        assert count_models(solver, [a, b]) == 3

    def test_enumeration_with_assumptions(self):
        solver = CdclSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        models = list(enumerate_models(solver, [a, b], assumptions=[-a]))
        assert models == [[0, 1]]


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]
