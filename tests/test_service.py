"""Tests for the attack-as-a-service subsystem (repro.service).

Everything here runs against a real ThreadingHTTPServer on a loopback
port -- submit/poll/fetch over actual HTTP round-trips -- because the
service's value is precisely its wire behavior: dedupe under
concurrent submission, 4xx (never 500) on malformed input, retry and
batching semantics in the clients, and results byte-identical to the
in-process :mod:`repro.api` path.
"""

import json
import threading
import time

import pytest

from repro import api
from repro.reports.profiles import ExperimentProfile
from repro.runner.spec import JobSpec
from repro.runner.stores import open_store
from repro.service import (
    MAX_BATCH_SPECS,
    BatchingClient,
    ReproService,
    ServiceClient,
    ServiceError,
    WireError,
)
from repro.service.schema import (
    WIRE_SCHEMA_VERSION,
    check_envelope,
    decode_body,
    envelope,
    parse_submission,
)

TINY = ExperimentProfile(
    name="tiny",
    scale=64,
    key_bits=6,
    n_seeds=1,
    timeout_s=120.0,
    table3_key_sizes=(6,),
)


def spec_of(payload="x", **extra):
    return JobSpec.make("selfcheck", TINY, payload=payload, **extra)


@pytest.fixture
def service(tmp_path):
    store = open_store(tmp_path / "cache", backend="json")
    svc = ReproService(
        port=0, jobs=1, store=store, metrics_dir=str(tmp_path / "metrics")
    ).start()
    try:
        yield svc
    finally:
        svc.close()


@pytest.fixture
def client(service):
    return ServiceClient(service.url, retries=2, backoff_s=0.01)


class TestWireSchema:
    def test_decode_plain_and_deflate_bodies(self):
        import zlib

        raw = json.dumps({"a": 1}).encode()
        assert decode_body(raw) == {"a": 1}
        assert decode_body(raw, "identity") == {"a": 1}
        assert decode_body(zlib.compress(raw), "deflate") == {"a": 1}

    def test_bad_deflate_is_400(self):
        with pytest.raises(WireError) as err:
            decode_body(b"not-compressed", "deflate")
        assert err.value.status == 400

    def test_unknown_encoding_is_415(self):
        with pytest.raises(WireError) as err:
            decode_body(b"{}", "gzip")
        assert err.value.status == 415

    def test_non_object_bodies_rejected(self):
        with pytest.raises(WireError):
            decode_body(b"[1, 2]")
        with pytest.raises(WireError):
            decode_body(b"definitely not json")

    def test_envelope_version_checks(self):
        good = envelope("submit", jobs=[])
        assert good["schema_version"] == WIRE_SCHEMA_VERSION
        check_envelope(good, kind="submit")
        for bad in (
            {"kind": "submit"},
            {"schema_version": True, "kind": "submit"},
            {"schema_version": WIRE_SCHEMA_VERSION + 1, "kind": "submit"},
            {"schema_version": 0, "kind": "submit"},
            {"schema_version": 1, "kind": "other"},
        ):
            with pytest.raises(WireError):
                check_envelope(bad, kind="submit")

    def test_parse_submission_round_trips_spec_hash(self):
        spec = spec_of("hello")
        parsed = parse_submission(envelope("submit", jobs=[spec.to_dict()]))
        assert parsed[0].spec_hash == spec.spec_hash

    def test_parse_submission_rejects_garbage(self):
        for jobs in ([], "nope", [42], [{"experiment": ""}],
                     [{"experiment": "no-such-cell"}],
                     [{"experiment": "selfcheck", "params": "x"}]):
            with pytest.raises(WireError):
                parse_submission(envelope("submit", jobs=jobs))

    def test_parse_submission_caps_batch_size(self):
        jobs = [spec_of(i).to_dict() for i in range(2)] * (
            MAX_BATCH_SPECS // 2 + 1
        )
        with pytest.raises(WireError):
            parse_submission(envelope("submit", jobs=jobs))


class TestHTTPEndpoints:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["schema_version"] == WIRE_SCHEMA_VERSION
        assert set(health["jobs"]) == {"queued", "running", "done", "failed"}

    def test_submit_poll_fetch(self, service, client):
        spec = spec_of("round-trip")
        (view,) = client.submit([spec])
        assert view["deduped"] is False
        assert view["job_id"] == spec.spec_hash[:16]
        done = client.wait([view["job_id"]], timeout_s=30)
        assert done[view["job_id"]]["status"] == "done"
        result = client.result(view["job_id"])
        assert result["payload"] == "round-trip"
        listed = client.jobs()
        assert view["job_id"] in {v["job_id"] for v in listed}

    def test_result_before_done_is_409(self, service, client):
        spec = spec_of("slow", duration_s=2.0)
        (view,) = client.submit([spec])
        with pytest.raises(ServiceError) as err:
            client.result(view["job_id"])
        assert err.value.status == 409
        client.wait([view["job_id"]], timeout_s=30)
        assert client.result(view["job_id"])["payload"] == "slow"

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.job("deadbeef")
        assert err.value.status == 404

    def test_unknown_endpoints_are_404(self, client):
        for method, path in (("GET", "/v2/jobs"), ("POST", "/v1/nope")):
            with pytest.raises(ServiceError) as err:
                client.request_raw(method, path, {} if method == "POST" else None)
            assert err.value.status == 404

    def test_malformed_body_is_400_not_500(self, service):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            service.url + "/v1/jobs",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_unknown_schema_version_is_400(self, service, client):
        payload = {
            "schema_version": WIRE_SCHEMA_VERSION + 1,
            "kind": "submit",
            "jobs": [spec_of().to_dict()],
        }
        with pytest.raises(ServiceError) as err:
            client.request("POST", "/v1/jobs", payload, kind="submitted")
        assert err.value.status == 400

    def test_unknown_experiment_is_400(self, service, client):
        payload = envelope(
            "submit", jobs=[{"experiment": "no-such-cell", "params": {}}]
        )
        with pytest.raises(ServiceError) as err:
            client.request("POST", "/v1/jobs", payload, kind="submitted")
        assert err.value.status == 400

    def test_spans_and_metrics_exposed(self, service, client):
        (view,) = client.submit([spec_of("observed")])
        client.wait([view["job_id"]], timeout_s=30)
        spans = client.spans()
        assert any(
            s.get("kind") == "span" and s.get("experiment") == "selfcheck"
            for s in spans
        )
        metrics = client.metrics_text()
        assert "repro_jobs_total" in metrics
        assert "repro_service_requests_total" in metrics


class TestDedupe:
    def test_concurrent_identical_submissions_compute_once(
        self, service, client
    ):
        """The acceptance criterion: N identical submissions, one solve."""
        spec = spec_of("stampede")
        n_clients = 100
        barrier = threading.Barrier(n_clients)
        errors = []

        def submit_one():
            try:
                barrier.wait(timeout=30)
                client.submit([spec])
            except Exception as exc:  # pragma: no cover - diagnostic aid
                errors.append(exc)

        threads = [threading.Thread(target=submit_one) for _ in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        service.registry.wait([spec.spec_hash[:16]], timeout_s=30)

        # Exactly one store entry and one computed job.
        assert len(service.store) == 1
        metrics = service.session.metrics
        computed = metrics.counter("repro_jobs_total").value(
            experiment="selfcheck", status="computed"
        )
        assert computed == 1
        new = metrics.counter("repro_service_jobs_total").value(
            disposition="new"
        )
        deduped = metrics.counter("repro_service_jobs_total").value(
            disposition="deduped"
        )
        assert new == 1
        assert deduped == n_clients - 1

    def test_failed_job_reruns_on_resubmission(self, service, client, tmp_path):
        spec = spec_of("flaky", fail_marker=str(tmp_path / "marker"))
        (view,) = client.submit([spec])
        done = client.wait([view["job_id"]], timeout_s=30)
        assert done[view["job_id"]]["status"] == "failed"
        with pytest.raises(ServiceError) as err:
            client.result(view["job_id"])
        assert err.value.status == 409
        # Resubmitting a failed spec is the retry surface: the marker
        # now exists, so the second run succeeds.
        (view2,) = client.submit([spec])
        assert view2["deduped"] is False
        done = client.wait([view2["job_id"]], timeout_s=30)
        assert done[view2["job_id"]]["status"] == "done"

    def test_service_results_byte_identical_to_in_process(
        self, service, client
    ):
        specs = [spec_of(f"cell-{i}") for i in range(3)]
        views = client.submit(specs)
        client.wait([v["job_id"] for v in views], timeout_s=30)
        remote = [client.result(v["job_id"]) for v in views]
        # The in-process path against the same store serves the same
        # entries; identical bytes proves the service stored exactly
        # what api.submit_jobs would have produced and reused.
        report = api.submit_jobs(specs, jobs=1, store=service.store)
        assert all(o.cached for o in report.outcomes)
        for outcome, fetched in zip(report.outcomes, remote):
            assert json.dumps(outcome.result, sort_keys=True) == json.dumps(
                fetched, sort_keys=True
            )


class TestClientRetry:
    def test_retries_injected_503s(self, service):
        service.inject_failures(2)
        client = ServiceClient(service.url, retries=3, backoff_s=0.01)
        assert client.health()["status"] == "ok"

    def test_no_retries_surfaces_503(self, service):
        service.inject_failures(1)
        client = ServiceClient(service.url, retries=0)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 503

    def test_4xx_is_never_retried(self, service):
        client = ServiceClient(service.url, retries=5, backoff_s=0.01)
        start = time.perf_counter()
        with pytest.raises(ServiceError) as err:
            client.job("nope")
        assert err.value.status == 404
        # Five retries with backoff would take visibly longer than one
        # immediate failure; 4xx must fail fast.
        assert time.perf_counter() - start < 1.0

    def test_connection_error_after_retries(self):
        client = ServiceClient(
            "http://127.0.0.1:9", retries=1, backoff_s=0.01, timeout_s=0.5
        )
        with pytest.raises(ServiceError):
            client.health()


class TestBatchingClient:
    def test_flushes_when_batch_fills(self, service):
        batcher = BatchingClient(
            service.url, batch_size=2, linger_s=30.0, queue_size=8
        )
        try:
            batcher.submit(spec_of("b0"))
            batcher.submit(spec_of("b1"))
            # linger is effectively infinite, so only the size trigger
            # can have sent these.
            deadline = time.monotonic() + 10
            while len(batcher.job_views) < 2:
                assert time.monotonic() < deadline
                time.sleep(0.01)
        finally:
            batcher.close()

    def test_flushes_remainder_on_close(self, service):
        with BatchingClient(service.url, batch_size=100, linger_s=30.0) as batcher:
            batcher.submit(spec_of("tail"))
            assert batcher.job_views == {}
        assert len(batcher.job_views) == 1
        with pytest.raises(RuntimeError):
            batcher.submit(spec_of("after-close"))

    def test_flush_surfaces_background_errors(self, service):
        service.inject_failures(10)
        client = ServiceClient(service.url, retries=0)
        batcher = BatchingClient(client=client, batch_size=1, linger_s=0.01)
        try:
            batcher.submit(spec_of("doomed"))
            with pytest.raises(ServiceError):
                batcher.flush()
        finally:
            service.inject_failures(-10)
            batcher.close()

    def test_explicit_flush_then_results(self, service):
        client = ServiceClient(service.url, retries=2, backoff_s=0.01)
        with BatchingClient(client=client, batch_size=50) as batcher:
            specs = [spec_of(f"f{i}") for i in range(5)]
            for spec in specs:
                batcher.submit(spec)
            batcher.flush()
            job_ids = batcher.job_ids()
        assert len(job_ids) == 5
        done = client.wait(job_ids, timeout_s=30)
        assert {v["status"] for v in done.values()} == {"done"}


class TestServiceLifecycle:
    def test_close_is_idempotent(self, tmp_path):
        svc = ReproService(
            port=0, store=None, metrics_dir=str(tmp_path / "m")
        ).start()
        svc.close()
        svc.close()
        # The session finalized exactly once and wrote its artifacts.
        assert (tmp_path / "m" / "metrics.prom").exists()
        assert (tmp_path / "m" / "BENCH_obs.json").exists()

    def test_serves_without_a_store(self, tmp_path):
        with ReproService(port=0, store=None).start() as svc:
            client = ServiceClient(svc.url, retries=1, backoff_s=0.01)
            (view,) = client.submit([spec_of("storeless")])
            client.wait([view["job_id"]], timeout_s=30)
            assert client.result(view["job_id"])["payload"] == "storeless"

    def test_server_session_never_clobbers_a_newer_one(self, tmp_path):
        from repro.observability import (
            current_session,
            end_session,
            start_session,
        )

        end_session()  # clear any leaked session so install succeeds
        assert current_session() is None
        svc = ReproService(port=0, store=None)
        assert current_session() is svc.session
        # Simulate the hazard: the service's session is replaced (e.g. a
        # test fixture grabbed the slot after the server released it).
        end_session()
        newer = start_session(command="newer")
        try:
            svc.close()  # must finalize its own session, not clear `newer`
            assert current_session() is newer
        finally:
            end_session()
