"""Tests for the repro.ir array-netlist IR.

The IR's entire contract is *bit-identity with the pure walks*: the
round-trip to/from :class:`~repro.netlist.netlist.Netlist` is the
identity, every array-backed kernel (topological order, fanout, cone,
Tseitin compile, word-engine simulation) must equal its dict/gate-object
reference, and the per-netlist cache must never serve a stale view
after any mutator.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import ir
from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.transform import extract_combinational_core
from repro.opt import optimize
from repro.opt.structhash import _read_counts
from repro.opt.sweep import cone_of_influence
from repro.sat.tseitin import compile_encoding
from repro.sim.logicsim import BitParallelSimulator, CombinationalSimulator


def sampled_netlist(seed: int, n_flops: int = 6) -> Netlist:
    rng = random.Random(seed)
    config = GeneratorConfig(
        n_flops=n_flops,
        n_inputs=1 + seed % 5,
        n_outputs=1 + seed % 4,
        gates_per_flop=1.0 + (seed % 3),
        max_fanin=2 + seed % 3,
        locality=(4, 8, 24)[seed % 3],
    )
    return generate_circuit(config, rng, name=f"ir{seed}")


def sampled_core(seed: int) -> Netlist:
    core, _, _ = extract_combinational_core(sampled_netlist(seed))
    return core


@pytest.fixture
def pure_mode():
    """Force the pure walks for one test, restoring the prior toggle."""
    prior = ir.core._FORCED
    ir.set_enabled(False)
    yield
    ir.set_enabled(prior)


class TestToggle:
    def test_env_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_IR", raising=False)
        prior = ir.core._FORCED
        ir.set_enabled(None)
        try:
            assert ir.enabled() is True
        finally:
            ir.set_enabled(prior)

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", "OFF"])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_IR", value)
        prior = ir.core._FORCED
        ir.set_enabled(None)
        try:
            assert ir.enabled() is False
        finally:
            ir.set_enabled(prior)

    def test_forced_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_IR", "0")
        prior = ir.core._FORCED
        try:
            ir.set_enabled(True)
            assert ir.enabled() is True
            ir.set_enabled(False)
            assert ir.enabled() is False
        finally:
            ir.set_enabled(prior)


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_netlist_ir_netlist_identity(self, seed):
        original = sampled_netlist(seed)
        back = ir.to_netlist(ir.from_netlist(original))
        assert back.name == original.name
        assert back.inputs == original.inputs
        assert back.outputs == original.outputs
        assert list(back.gates) == list(original.gates)
        for net, gate in original.gates.items():
            assert back.gates[net].gtype == gate.gtype
            assert back.gates[net].inputs == gate.inputs
        assert list(back.dffs) == list(original.dffs)
        assert [d.d for d in back.dffs.values()] == [
            d.d for d in original.dffs.values()
        ]

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_gate_objects_shared_not_copied(self, seed):
        netlist = sampled_netlist(seed)
        view = ir.from_netlist(netlist)
        assert list(view.gates) == list(netlist.gates.values())

    def test_empty_netlist(self):
        empty = Netlist("empty")
        back = ir.to_netlist(ir.from_netlist(empty))
        assert back.inputs == [] and back.outputs == [] and back.n_gates == 0


def _forced_off():
    """try/finally pair (no fixture: hypothesis + function fixtures clash)."""
    prior = ir.core._FORCED
    ir.set_enabled(False)
    return prior


class TestArrayWalksMatchPure:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_topological_order_identical(self, seed):
        prior = _forced_off()
        try:
            netlist = sampled_netlist(seed)
            pure = list(netlist.topological_gates())
            view = ir.from_netlist(netlist)
            assert view.topological_gate_objects() == pure
        finally:
            ir.set_enabled(prior)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_read_counts_identical(self, seed):
        prior = _forced_off()
        try:
            netlist = sampled_netlist(seed)
            assert (
                ir.from_netlist(netlist).read_counts() == _read_counts(netlist)
            )
        finally:
            ir.set_enabled(prior)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), pin=st.booleans())
    def test_cone_identical(self, seed, pin):
        prior = _forced_off()
        try:
            netlist = sampled_netlist(seed)
            pinned = frozenset()
            if pin and netlist.gates:
                pinned = frozenset([next(iter(netlist.gates)), "no-such-net"])
            assert ir.from_netlist(netlist).cone_keep(
                pinned
            ) == cone_of_influence(netlist, pinned)
        finally:
            ir.set_enabled(prior)

    def test_cycle_error_message_matches_pure(self, pure_mode):
        netlist = Netlist("cyc")
        netlist.add_input("a")
        netlist.add_gate("x", GateType.AND, ["a", "y"])
        netlist.add_gate("y", GateType.AND, ["a", "x"])
        netlist.add_output("y")
        with pytest.raises(Exception) as pure_err:
            netlist.topological_gates()
        with pytest.raises(Exception) as ir_err:
            ir.from_netlist(netlist).topological_order()
        assert str(ir_err.value) == str(pure_err.value)


class TestTseitinCompileIdentical:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_encodings_equal_including_dict_order(self, seed):
        core = sampled_core(seed)
        prior = ir.core._FORCED
        try:
            ir.set_enabled(False)
            pure = compile_encoding(core)
            ir.set_enabled(True)
            arr = compile_encoding(core)
        finally:
            ir.set_enabled(prior)
        assert arr.n_locals == pure.n_locals
        assert arr.clauses == pure.clauses
        # Equality of the mapping *and* its iteration order: stamped
        # copies walk net_local in insertion order.
        assert list(arr.net_local.items()) == list(pure.net_local.items())


class TestSimulationIdentical:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        width=st.sampled_from([1, 15, 16, 17, 63, 64, 65, 130]),
    )
    def test_engine_matches_scalar_run_patterns(self, seed, width):
        core = sampled_core(seed)
        rng = random.Random(seed ^ 0xC0FFEE)
        patterns = [
            {net: rng.randrange(2) for net in core.inputs}
            for _ in range(width)
        ]
        prior = ir.core._FORCED
        try:
            ir.set_enabled(False)
            scalar = BitParallelSimulator(core).run_patterns(patterns)
            ir.set_enabled(True)
            vectored = BitParallelSimulator(core).run_patterns(patterns)
        finally:
            ir.set_enabled(prior)
        assert vectored == scalar

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), level=st.sampled_from([0, 1, 2]))
    def test_opt_levels_agree_across_arms(self, seed, level):
        """optimize() + simulation give one answer regardless of the IR."""
        rng = random.Random(seed ^ 0xBEEF)
        pattern_seed = rng.getrandbits(32)
        results = {}
        prior = ir.core._FORCED
        try:
            for arm in (False, True):
                ir.set_enabled(arm)
                core = sampled_core(seed)
                if level:
                    core = optimize(core, level=level).netlist
                prng = random.Random(pattern_seed)
                patterns = [
                    {net: prng.randrange(2) for net in core.inputs}
                    for _ in range(20)
                ]
                sim = BitParallelSimulator(core)
                scalar_ref = CombinationalSimulator(core)
                got = sim.run_patterns(patterns)
                for pattern, outputs in zip(patterns, got):
                    assert outputs == scalar_ref.run_outputs(pattern)
                results[arm] = (list(core.gates), got)
        finally:
            ir.set_enabled(prior)
        assert results[False] == results[True]


class TestCacheInvalidation:
    """ir_for (and the topo/fanout caches beneath it) across every mutator."""

    def _base(self) -> Netlist:
        netlist = Netlist("inv")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_gate("x", GateType.AND, ["a", "b"])
        netlist.add_gate("y", GateType.OR, ["x", "b"])
        netlist.add_output("y")
        return netlist

    def test_cache_hit_when_unchanged(self):
        netlist = self._base()
        assert ir.ir_for(netlist) is ir.ir_for(netlist)

    def test_add_gate_invalidates(self):
        netlist = self._base()
        before = ir.ir_for(netlist)
        netlist.add_gate("z", GateType.NOT, ["x"])
        after = ir.ir_for(netlist)
        assert after is not before
        assert "z" in after.index

    def test_add_input_invalidates(self):
        netlist = self._base()
        before = ir.ir_for(netlist)
        netlist.add_input("c")
        after = ir.ir_for(netlist)
        assert after is not before
        assert len(after.pi) == 3

    def test_add_output_invalidates(self):
        netlist = self._base()
        before = ir.ir_for(netlist)
        netlist.add_output("x")
        after = ir.ir_for(netlist)
        assert after is not before
        assert len(after.po) == 2

    def test_set_outputs_invalidates(self):
        netlist = self._base()
        before = ir.ir_for(netlist)
        netlist.set_outputs(["x"])
        after = ir.ir_for(netlist)
        assert after is not before
        assert [after.names[nid] for nid in after.po] == ["x"]

    def test_remove_gate_invalidates(self):
        netlist = self._base()
        netlist.set_outputs(["x"])
        before = ir.ir_for(netlist)
        netlist.remove_gate("y")
        after = ir.ir_for(netlist)
        assert after is not before
        assert "y" not in after.index or after.n_gates == 1

    def test_remove_input_invalidates(self):
        netlist = self._base()
        netlist.set_outputs([])
        netlist.remove_gate("y")
        netlist.remove_gate("x")
        before = ir.ir_for(netlist)
        netlist.remove_input("b")
        after = ir.ir_for(netlist)
        assert after is not before
        assert len(after.pi) == 1

    def test_add_dff_invalidates(self):
        netlist = self._base()
        before = ir.ir_for(netlist)
        netlist.add_dff(q="q0", d="x")
        after = ir.ir_for(netlist)
        assert after is not before
        assert len(after.dff_q) == 1

    def test_mutators_invalidate_topo_and_fanout(self):
        """Satellite regression: every mutator drops the derived caches."""
        mutations = [
            lambda n: n.add_gate("z", GateType.NOT, ["x"]),
            lambda n: n.add_input("c"),
            lambda n: n.add_output("x"),
            lambda n: n.set_outputs(["x"]),
            lambda n: n.add_dff(q="q0", d="x"),
            lambda n: n.remove_gate("y"),
        ]
        for mutate in mutations:
            netlist = self._base()
            netlist.topological_gates()
            netlist.fanout_map()
            assert netlist._topo_cache is not None
            assert netlist._fanout_cache is not None
            version = netlist.version
            mutate(netlist)
            assert netlist._topo_cache is None, mutate
            assert netlist._fanout_cache is None, mutate
            assert netlist.version > version, mutate

    def test_fanout_map_fresh_after_remove_gate(self):
        netlist = self._base()
        assert any(g.output == "y" for g in netlist.fanout_map()["x"])
        netlist.set_outputs(["x"])
        netlist.remove_gate("y")
        assert netlist.fanout_map().get("x", []) == []


class TestWordEngineOptionality:
    def test_word_engine_none_without_numpy(self, monkeypatch):
        from repro.ir import lanes

        monkeypatch.setattr(lanes, "np", None)
        assert lanes.word_engine_for([], 0, 0) is None

    def test_simulator_falls_back_when_ir_disabled(self, pure_mode):
        core = sampled_core(7)
        sim = BitParallelSimulator(core)
        rng = random.Random(7)
        patterns = [
            {net: rng.randrange(2) for net in core.inputs} for _ in range(40)
        ]
        sim.run_patterns(patterns)
        assert sim._engine is None
