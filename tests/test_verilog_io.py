"""Tests for the structural Verilog export/import subset."""

import random

import pytest

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.bench_suite.iscas import s27_netlist
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist, NetlistError
from repro.netlist.validate import validate_netlist
from repro.netlist.verilog_io import parse_verilog, write_verilog
from repro.sim.logicsim import evaluate
from repro.sim.seqsim import SequentialSimulator
from repro.util.bitvec import random_bits


def roundtrip(netlist: Netlist) -> Netlist:
    return parse_verilog(write_verilog(netlist))


class TestWrite:
    def test_module_header(self):
        text = write_verilog(s27_netlist())
        assert text.startswith("// generated")
        assert "module s27 (clk, G0" in text
        assert text.rstrip().endswith("endmodule")

    def test_combinational_has_no_clock_port(self):
        netlist = Netlist("c")
        netlist.add_input("a")
        netlist.add_gate("y", GateType.NOT, ["a"])
        netlist.add_output("y")
        text = write_verilog(netlist)
        assert "module c (a, y);" in text
        assert "clk" not in text

    def test_special_net_names_escaped(self):
        netlist = Netlist("e")
        netlist.add_input("a")
        netlist.add_gate("c0::weird", GateType.BUF, ["a"])
        netlist.add_output("c0::weird")
        text = write_verilog(netlist)
        assert "\\c0::weird " in text


class TestRoundTrip:
    def test_s27_roundtrip_structure(self):
        original = s27_netlist()
        parsed = roundtrip(original)
        assert set(parsed.inputs) == set(original.inputs)
        assert set(parsed.outputs) == set(original.outputs)
        assert set(parsed.dffs) == set(original.dffs)
        assert parsed.n_gates == original.n_gates
        validate_netlist(parsed)

    def test_s27_roundtrip_behaviour(self):
        original = s27_netlist()
        parsed = roundtrip(original)
        rng = random.Random(3)
        sim_a = SequentialSimulator(original)
        sim_b = SequentialSimulator(parsed)
        for _ in range(20):
            inputs = dict(zip(original.inputs, random_bits(4, rng)))
            assert sim_a.step(inputs)["G17"] == sim_b.step(inputs)["G17"]
            assert sim_a.get_state_vector() == sim_b.get_state_vector()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_synthetic_roundtrip_behaviour(self, seed):
        rng = random.Random(seed)
        config = GeneratorConfig(n_flops=6, n_inputs=4, n_outputs=3)
        original = generate_circuit(config, rng, name=f"v{seed}")
        parsed = roundtrip(original)
        sim_a = SequentialSimulator(original)
        sim_b = SequentialSimulator(parsed)
        for _ in range(10):
            inputs = dict(zip(original.inputs, random_bits(4, rng)))
            va = sim_a.step(inputs)
            vb = sim_b.step(inputs)
            assert [va[n] for n in original.outputs] == [
                vb[n] for n in parsed.outputs
            ]

    def test_mux_and_constants_roundtrip(self):
        netlist = Netlist("m")
        netlist.add_input("s")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_gate("one", GateType.CONST1, [])
        netlist.add_gate("zero", GateType.CONST0, [])
        netlist.add_gate("y", GateType.MUX, ["s", "a", "b"])
        netlist.add_gate("z", GateType.MUX, ["s", "one", "zero"])
        netlist.add_output("y")
        netlist.add_output("z")
        parsed = roundtrip(netlist)
        for s in (0, 1):
            for a in (0, 1):
                for b in (0, 1):
                    bits = {"s": s, "a": a, "b": b}
                    want = evaluate(netlist, bits)
                    got = evaluate(parsed, bits)
                    assert got["y"] == want["y"]
                    assert got["z"] == want["z"]

    def test_escaped_names_roundtrip(self):
        netlist = Netlist("esc")
        netlist.add_input("a")
        netlist.add_gate("c0::ppi_0", GateType.NOT, ["a"])
        netlist.add_output("c0::ppi_0")
        parsed = roundtrip(netlist)
        assert "c0::ppi_0" in parsed.outputs


class TestParseErrors:
    def test_missing_module(self):
        with pytest.raises(NetlistError):
            parse_verilog("wire x;")
