"""Tests for table rendering, profiles, and fast experiment runners."""

import pytest

from repro.reports.profiles import PROFILES, active_profile
from repro.reports.tables import render_markdown_table, render_table


class TestTables:
    def test_alignment(self):
        text = render_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        text = render_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_float_formatting(self):
        text = render_table(["x"], [[1.23456]])
        assert "1.23" in text

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_markdown(self):
        text = render_markdown_table(["a", "b"], [[1, "x"]])
        assert text.splitlines()[0] == "| a | b |"
        assert text.splitlines()[1] == "|---|---|"
        assert text.splitlines()[2] == "| 1 | x |"

    def test_markdown_row_width_checked(self):
        with pytest.raises(ValueError):
            render_markdown_table(["a"], [[1, 2]])


class TestProfiles:
    def test_known_profiles(self):
        assert set(PROFILES) == {"quick", "full", "paper"}
        assert PROFILES["paper"].key_bits == 128
        assert PROFILES["paper"].n_seeds == 10
        assert PROFILES["paper"].scale == 1
        assert PROFILES["paper"].table3_key_sizes[0] == 144
        assert PROFILES["paper"].table3_key_sizes[-1] == 368

    def test_active_profile_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert active_profile().name == "quick"

    def test_active_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert active_profile().name == "full"

    def test_active_profile_bad_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "huge")
        with pytest.raises(KeyError):
            active_profile()

    def test_effective_key_bits_clamps(self):
        profile = PROFILES["quick"]
        assert profile.effective_key_bits(10) == 9
        assert profile.effective_key_bits(100) == profile.key_bits
        assert profile.effective_key_bits(100, requested=4) == 4


class TestExperimentRunners:
    """Smoke-level runs on tiny circuits (the benches do the real sizes)."""

    def _tiny_profile(self):
        from repro.reports.profiles import ExperimentProfile

        return ExperimentProfile(
            name="tiny",
            scale=64,
            key_bits=6,
            n_seeds=1,
            timeout_s=120.0,
            table3_key_sizes=(6,),
        )

    @pytest.mark.requires_numpy
    def test_run_table2_row(self):
        from repro.reports.experiments import run_table2_row

        row = run_table2_row("s5378", self._tiny_profile())
        assert row.benchmark == "s5378"
        assert row.success_rate == 1.0
        assert row.n_seed_candidates >= 1

    @pytest.mark.requires_numpy
    def test_run_table3_cell(self):
        from repro.reports.experiments import run_table3_cell

        row = run_table3_cell("s5378", 6, self._tiny_profile())
        assert row.key_bits == 6
        assert row.success_rate == 1.0

    @pytest.mark.requires_numpy
    def test_run_nonlinear_ablation(self):
        from repro.reports.experiments import run_nonlinear_ablation

        rows = run_nonlinear_ablation(
            self._tiny_profile(), n_flops=8, key_bits=4
        )
        by_name = {r.prng: r for r in rows}
        assert by_name["lfsr"].modeled_correctly
        assert by_name["lfsr"].attack_success
        assert not by_name["nonlinear-filter"].modeled_correctly
        assert not by_name["nonlinear-filter"].attack_success
