"""docs/cli.md must match the live argparse tree (`make docs`).

The same check CI's docs-drift job performs, kept in tier-1 so a flag
added without regenerating the reference fails locally first.
"""

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_cli_docs", REPO / "scripts" / "gen_cli_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_cli_reference_is_current():
    generated = load_generator().render_cli_markdown()
    committed = (REPO / "docs" / "cli.md").read_text()
    assert generated == committed, (
        "docs/cli.md is stale -- regenerate with `make docs` and commit the diff"
    )


def test_reference_covers_every_subcommand():
    text = (REPO / "docs" / "cli.md").read_text()
    for command in ("attack", "table2", "matrix", "fuzz", "cache migrate", "top"):
        assert f"## `dynunlock {command}`" in text
