"""Tests for Berlekamp-Massey LFSR recovery."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.prng.berlekamp_massey import (
    LfsrDescription,
    berlekamp_massey,
    recover_fibonacci_taps,
)
from repro.prng.lfsr import FibonacciLfsr
from repro.prng.polynomials import default_taps
from repro.util.bitvec import random_bits


def lfsr_output_stream(width: int, seed, taps, n_bits: int) -> list[int]:
    """The new-bit sequence of our Fibonacci LFSR (state bit 0)."""
    lfsr = FibonacciLfsr(width=width, seed_bits=seed, taps=taps)
    return [lfsr.advance()[0] for _ in range(n_bits)]


class TestBerlekampMassey:
    def test_all_zero_sequence(self):
        result = berlekamp_massey([0] * 16)
        assert result.length == 0

    def test_alternating_sequence(self):
        result = berlekamp_massey([1, 0, 1, 0, 1, 0, 1, 0])
        assert result.length <= 2
        assert result.extend([1, 0], 4) == [1, 0, 1, 0]

    @pytest.mark.parametrize("width", [3, 5, 8, 11, 16])
    def test_recovers_lfsr_length_and_prediction(self, width):
        rng = random.Random(width)
        taps = default_taps(width)
        seed = random_bits(width, rng)
        while not any(seed):
            seed = random_bits(width, rng)
        stream = lfsr_output_stream(width, seed, taps, 4 * width)
        result = berlekamp_massey(stream)
        assert result.length <= width
        # The recovered recurrence must predict the rest of the stream.
        hold_out = lfsr_output_stream(width, seed, taps, 6 * width)
        prefix, suffix = hold_out[: 4 * width], hold_out[4 * width:]
        assert result.extend(prefix, len(suffix)) == suffix

    @pytest.mark.parametrize("width", [4, 7, 10])
    def test_recovered_taps_rebuild_equivalent_keystream(self, width):
        """recover_fibonacci_taps + FibonacciLfsr reproduce the stream."""
        rng = random.Random(width * 3)
        taps = default_taps(width)
        seed = random_bits(width, rng)
        while not any(seed):
            seed = random_bits(width, rng)
        stream = lfsr_output_stream(width, seed, taps, 6 * width)
        described = berlekamp_massey(stream[: 4 * width])
        if described.length != width:
            pytest.skip("degenerate seed hit a shorter cycle")
        rec_taps = recover_fibonacci_taps(described)
        assert rec_taps == tuple(taps)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=4,
                    max_size=40))
    def test_minimality_property(self, bits):
        """BM's register always regenerates its own input sequence."""
        result = berlekamp_massey(bits)
        if result.length == 0:
            assert all(b == 0 for b in bits)
            return
        if result.length >= len(bits):
            return  # not enough data to check prediction
        prefix = bits[: result.length]
        assert result.extend(prefix, len(bits) - result.length) == bits[
            result.length:
        ]

    def test_recover_taps_width_check(self):
        description = LfsrDescription(length=4, connection_poly=(1, 0, 0, 1, 1))
        with pytest.raises(ValueError):
            recover_fibonacci_taps(description, width=3)

    def test_predict_next_requires_history(self):
        description = LfsrDescription(length=3, connection_poly=(1, 1, 0, 1))
        with pytest.raises(ValueError):
            description.predict_next([1, 0])
