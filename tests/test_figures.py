"""Tests for ASCII chart rendering."""

import pytest

from repro.reports.figures import ascii_bar_chart, ascii_line_plot


class TestBarChart:
    def test_basic_shape(self):
        chart = ascii_bar_chart(["a", "bb"], [1.0, 2.0], width=10, title="T")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 3
        # The larger value gets the full width.
        assert "#" * 10 in lines[2]

    def test_zero_values(self):
        chart = ascii_bar_chart(["x"], [0.0])
        assert "#" not in chart

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert ascii_bar_chart([], [], title="nothing") == "nothing"

    def test_unit_suffix(self):
        chart = ascii_bar_chart(["a"], [3.5], unit="s")
        assert "3.5s" in chart


class TestLinePlot:
    def test_marks_all_points(self):
        plot = ascii_line_plot([0, 1, 2], [0, 1, 4], height=5, width=20)
        assert plot.count("*") == 3

    def test_constant_series(self):
        plot = ascii_line_plot([0, 1], [2, 2])
        assert "*" in plot

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_line_plot([1], [1, 2])

    def test_empty(self):
        assert ascii_line_plot([], [], title="t") == "t"
