"""Tests for per-iteration CNF dumping and early seed-bit probing."""

import random

import pytest

from repro.attack.satattack import SatAttack
from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.core.cnf_dump import CnfDumper, probe_fixed_key_bits
from repro.core.modeling import build_combinational_model
from repro.locking.effdyn import lock_with_effdyn
from repro.sat.cnf import Cnf
from repro.sat.solver import CdclSolver


def make_attack(seed: int = 3):
    rng = random.Random(seed)
    config = GeneratorConfig(n_flops=7, n_inputs=3, n_outputs=2)
    netlist = generate_circuit(config, rng, name="dump")
    lock = lock_with_effdyn(netlist, key_bits=4, rng=rng)
    model = build_combinational_model(
        netlist, lock.spec, lock.lfsr_taps, lock.key_bits
    )
    oracle = lock.make_oracle()
    n_a = len(model.a_inputs)

    def oracle_fn(x):
        response = oracle.query(x[:n_a], x[n_a:])
        return list(response.scan_out) + list(response.primary_outputs)

    attack = SatAttack(model.netlist, model.key_inputs, oracle_fn)
    return attack, lock


class TestProbeFixedKeyBits:
    def test_unit_clauses_are_revealed(self):
        solver = CdclSolver()
        k1, k2, k3 = (solver.new_var() for _ in range(3))
        solver.add_clause([k1])
        solver.add_clause([-k2])
        fixed = probe_fixed_key_bits(solver, [k1, k2, k3])
        assert fixed == {0: 1, 1: 0}

    def test_implied_bits_are_revealed(self):
        solver = CdclSolver()
        a, k = solver.new_var(), solver.new_var()
        solver.add_clause([a])
        solver.add_clause([-a, k])  # a -> k
        assert probe_fixed_key_bits(solver, [k]) == {0: 1}

    def test_free_bits_not_reported(self):
        solver = CdclSolver()
        k = solver.new_var()
        assert probe_fixed_key_bits(solver, [k]) == {}


class TestCnfDumper:
    @pytest.mark.requires_numpy
    def test_snapshots_collected_in_memory(self):
        attack, lock = make_attack()
        dumper = CnfDumper(attack, directory=None, probe=False)
        attack.config.iteration_hook = dumper
        result = attack.run()
        assert len(dumper.snapshots) == result.iterations
        for snap in dumper.snapshots:
            assert snap.path is None
            assert snap.n_clauses > 0

    @pytest.mark.requires_numpy
    def test_snapshots_written_to_disk(self, tmp_path):
        attack, lock = make_attack(seed=4)
        dumper = CnfDumper(attack, directory=tmp_path)
        attack.config.iteration_hook = dumper
        result = attack.run()
        files = sorted(tmp_path.glob("iteration_*.cnf"))
        assert len(files) == result.iterations
        # Snapshots are valid DIMACS and grow monotonically.
        sizes = []
        for path in files:
            cnf = Cnf.load(path)
            sizes.append(cnf.n_clauses)
        assert sizes == sorted(sizes)

    @pytest.mark.requires_numpy
    def test_probe_reveals_bits_consistent_with_final_candidates(self):
        attack, lock = make_attack(seed=5)
        dumper = CnfDumper(attack, directory=None, probe=True)
        attack.config.iteration_hook = dumper
        result = attack.run()
        assert result.converged
        if dumper.snapshots:
            last = dumper.snapshots[-1]
            for index, value in last.revealed_bits.items():
                for candidate in result.key_candidates:
                    assert candidate[index] == value
