"""Tests for the synthetic benchmark generator and the registry."""

import random

import pytest

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.bench_suite.iscas import s27_netlist, s208_like_netlist
from repro.bench_suite.registry import (
    PAPER_BENCHMARKS,
    TABLE2_BENCHMARKS,
    TABLE3_BENCHMARKS,
    build_benchmark_netlist,
    get_benchmark,
)
from repro.netlist.bench_io import write_bench
from repro.netlist.validate import validate_netlist
from repro.sim.seqsim import SequentialSimulator
from repro.util.bitvec import random_bits


class TestGeneratorConfig:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            GeneratorConfig(n_flops=0)
        with pytest.raises(ValueError):
            GeneratorConfig(n_flops=4, n_inputs=0)
        with pytest.raises(ValueError):
            GeneratorConfig(n_flops=4, gates_per_flop=0)
        with pytest.raises(ValueError):
            GeneratorConfig(n_flops=4, max_fanin=1)
        with pytest.raises(ValueError):
            GeneratorConfig(n_flops=4, n_outputs=-1)


class TestGenerator:
    def test_shape_matches_config(self):
        config = GeneratorConfig(n_flops=17, n_inputs=6, n_outputs=9)
        netlist = generate_circuit(config, random.Random(1), name="g")
        assert netlist.n_dffs == 17
        assert len(netlist.inputs) == 6
        assert len(netlist.outputs) == 9

    def test_structurally_valid(self):
        config = GeneratorConfig(n_flops=25, n_inputs=8, n_outputs=8)
        netlist = generate_circuit(config, random.Random(2), name="g")
        validate_netlist(netlist)

    def test_deterministic(self):
        config = GeneratorConfig(n_flops=9, n_inputs=4, n_outputs=4)
        a = generate_circuit(config, random.Random(5), name="g")
        b = generate_circuit(config, random.Random(5), name="g")
        assert write_bench(a) == write_bench(b)

    def test_different_seeds_differ(self):
        config = GeneratorConfig(n_flops=9, n_inputs=4, n_outputs=4)
        a = generate_circuit(config, random.Random(5), name="g")
        b = generate_circuit(config, random.Random(6), name="g")
        assert write_bench(a) != write_bench(b)

    def test_state_actually_evolves(self):
        """The next-state function must not be constant (capture matters)."""
        config = GeneratorConfig(n_flops=10, n_inputs=4, n_outputs=4)
        netlist = generate_circuit(config, random.Random(7), name="g")
        sim = SequentialSimulator(netlist)
        rng = random.Random(8)
        states = set()
        for _ in range(20):
            sim.step(dict(zip(netlist.inputs, random_bits(4, rng))))
            states.add(tuple(sim.get_state_vector()))
        assert len(states) > 2


class TestEmbeddedCircuits:
    def test_s27_is_genuine_shape(self):
        netlist = s27_netlist()
        assert (len(netlist.inputs), len(netlist.outputs), netlist.n_dffs) == (
            4, 1, 3,
        )

    def test_s208_like_has_8_flops(self):
        netlist = s208_like_netlist()
        assert netlist.n_dffs == 8
        validate_netlist(netlist)

    def test_s208_like_is_deterministic(self):
        assert write_bench(s208_like_netlist()) == write_bench(
            s208_like_netlist()
        )


class TestRegistry:
    def test_paper_flop_counts(self):
        """Column 2 of the paper's Table II, verbatim."""
        expected = {
            "s5378": 160, "s13207": 202, "s15850": 442, "s38584": 1233,
            "s38417": 1564, "s35932": 1728, "b20": 429, "b21": 429,
            "b22": 611, "b17": 864,
        }
        for name, flops in expected.items():
            assert PAPER_BENCHMARKS[name].n_scan_flops == flops

    def test_table_lists(self):
        assert len(TABLE2_BENCHMARKS) == 10
        assert TABLE3_BENCHMARKS == ["s38584", "s38417", "s35932"]

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_benchmark("s9999")

    def test_scale_divides_flops(self):
        netlist = build_benchmark_netlist("s35932", scale=8)
        assert netlist.n_dffs == 1728 // 8

    def test_scale_floor(self):
        netlist = build_benchmark_netlist("s5378", scale=100)
        assert netlist.n_dffs == 16  # floor so circuits stay meaningful

    def test_full_scale_matches_paper(self):
        netlist = build_benchmark_netlist("s13207", scale=1)
        assert netlist.n_dffs == 202

    def test_deterministic_per_name_and_scale(self):
        a = build_benchmark_netlist("b17", scale=16)
        b = build_benchmark_netlist("b17", scale=16)
        assert write_bench(a) == write_bench(b)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            get_benchmark("b17").generator_config(scale=0)
