"""Unit tests for repro.util.bitvec."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.util.bitvec import (
    bits_from_int,
    bits_from_str,
    bits_to_int,
    bits_to_str,
    parity,
    random_bits,
)


class TestBitsFromInt:
    def test_basic(self):
        assert bits_from_int(6, 4) == [0, 1, 1, 0]

    def test_zero_width(self):
        assert bits_from_int(0, 0) == []

    def test_all_ones(self):
        assert bits_from_int(15, 4) == [1, 1, 1, 1]

    def test_value_too_large(self):
        with pytest.raises(ValueError):
            bits_from_int(16, 4)

    def test_negative_value(self):
        with pytest.raises(ValueError):
            bits_from_int(-1, 4)

    def test_negative_width(self):
        with pytest.raises(ValueError):
            bits_from_int(0, -1)


class TestBitsToInt:
    def test_basic(self):
        assert bits_to_int([0, 1, 1, 0]) == 6

    def test_empty(self):
        assert bits_to_int([]) == 0

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_roundtrip(self, value):
        width = max(1, value.bit_length())
        assert bits_to_int(bits_from_int(value, width)) == value


class TestBitStrings:
    def test_parse(self):
        assert bits_from_str("0110") == [0, 1, 1, 0]

    def test_parse_with_underscores(self):
        assert bits_from_str("10_10") == [1, 0, 1, 0]

    def test_parse_rejects_other_chars(self):
        with pytest.raises(ValueError):
            bits_from_str("01x0")

    def test_render(self):
        assert bits_to_str([1, 0, 1]) == "101"

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=64))
    def test_roundtrip(self, bits):
        assert bits_from_str(bits_to_str(bits)) == bits


class TestParity:
    def test_even(self):
        assert parity([1, 1, 0]) == 0

    def test_odd(self):
        assert parity([1, 1, 1]) == 1

    def test_empty(self):
        assert parity([]) == 0

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=100))
    def test_matches_sum_mod2(self, bits):
        assert parity(bits) == sum(bits) % 2


class TestRandomBits:
    def test_length_and_range(self):
        bits = random_bits(100, random.Random(3))
        assert len(bits) == 100
        assert set(bits) <= {0, 1}

    def test_deterministic(self):
        assert random_bits(32, random.Random(5)) == random_bits(32, random.Random(5))


# ----------------------------------------------------------------------
# hypothesis property suites: packed lanes vs the scalar reference
# ----------------------------------------------------------------------
from repro.util.bitvec import (  # noqa: E402
    PACK_WORD_BITS,
    broadcast_bit,
    lane_mask,
    pack_lanes,
    unpack_lanes,
)

bit = st.integers(min_value=0, max_value=1)


def bit_matrix(max_rows=8, max_width=16):
    """Strategy: a non-ragged 0/1 matrix (rows = lanes, columns = nets)."""
    return st.integers(min_value=0, max_value=max_width).flatmap(
        lambda width: st.lists(
            st.lists(bit, min_size=width, max_size=width),
            min_size=1,
            max_size=max_rows,
        )
    )


class TestPackedLaneProperties:
    @given(bit_matrix())
    def test_pack_unpack_round_trip(self, rows):
        assert unpack_lanes(pack_lanes(rows), len(rows)) == rows

    @given(bit_matrix())
    def test_packing_matches_scalar_bits(self, rows):
        """Word ``i`` bit ``lane`` is exactly ``rows[lane][i]``."""
        words = pack_lanes(rows)
        assert len(words) == len(rows[0])
        for i, word in enumerate(words):
            assert word >> len(rows) == 0  # no stray high lanes
            for lane, row in enumerate(rows):
                assert (word >> lane) & 1 == row[i]

    @given(st.lists(bit, min_size=1, max_size=16),
           st.integers(min_value=1, max_value=PACK_WORD_BITS))
    def test_broadcast_equals_packing_identical_rows(self, bits, n_lanes):
        assert pack_lanes([bits] * n_lanes) == [
            broadcast_bit(b, n_lanes) for b in bits
        ]

    @given(st.integers(min_value=0, max_value=256))
    def test_lane_mask_is_all_ones(self, n):
        assert lane_mask(n) == bits_to_int([1] * n)

    @given(st.lists(bit, min_size=1, max_size=64))
    def test_int_round_trip_at_exact_width(self, bits):
        assert bits_from_int(bits_to_int(bits), len(bits)) == bits

    def test_pack_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            pack_lanes([[0, 1], [1]])

    def test_pack_rejects_non_bits(self):
        with pytest.raises(ValueError):
            pack_lanes([[0, 2]])
