"""Seed equivalence classes: why tiny circuits report inexact seeds.

When the key width approaches the chain length, the stacked overlay
matrix ``[M_in; M_out]`` can be rank-deficient over GF(2): seeds whose
difference lies in its nullspace scramble *identically* under the
attacker's query protocol.  DynUnlock then recovers the equivalence
class, any member of which grants full scan access -- the paper's attack
goal -- even though the bit-exact seed is information-theoretically
unreachable from chain observations alone.

These tests assert exactly that story: every replay survivor predicts
the oracle perfectly, survivors differ from the true seed only by
nullspace vectors, and full-rank overlays force exact recovery.
"""

import random

import pytest

np = pytest.importorskip("numpy")  # whole-module skip on the numpy-less leg

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.core.analysis import overlay_matrices
from repro.core.dynunlock import DynUnlockConfig, dynunlock
from repro.gf2.matrix import GF2Matrix
from repro.gf2.solve import rank
from repro.locking.effdyn import lock_with_effdyn
from repro.sim.logicsim import CombinationalSimulator
from repro.util.bitvec import random_bits


def stacked_overlay_rank(lock) -> int:
    m_in, m_out = overlay_matrices(lock.spec, lock.lfsr_taps, lock.key_bits)
    return rank(GF2Matrix(np.vstack([m_in.data, m_out.data])))


class TestEquivalenceClasses:
    def test_rank_deficit_implies_indistinguishable_seeds(self):
        """Construct a deliberately rank-deficient case and show two
        distinct seeds produce identical oracle behaviour."""
        rng = random.Random(21)
        config = GeneratorConfig(n_flops=5, n_inputs=3, n_outputs=2)
        netlist = generate_circuit(config, rng, name="eq")
        # Key width 4 on a 5-flop chain: rank <= 2*5 rows but the rows
        # repeat heavily; search for a lock with deficit.
        for attempt in range(20):
            lock = lock_with_effdyn(
                netlist, key_bits=4, rng=random.Random(attempt)
            )
            deficit = lock.key_bits - stacked_overlay_rank(lock)
            if deficit > 0:
                break
        else:
            pytest.skip("no rank-deficient geometry found at this size")

        m_in, m_out = overlay_matrices(
            lock.spec, lock.lfsr_taps, lock.key_bits
        )
        from repro.gf2.solve import nullspace_basis

        stacked = GF2Matrix(np.vstack([m_in.data, m_out.data]))
        null_vec = nullspace_basis(stacked)[0]
        seed_b = [s ^ d for s, d in zip(lock.seed, null_vec)]
        assert seed_b != list(lock.seed)

        from repro.locking.effdyn import EffDynLock

        lock_b = EffDynLock(
            netlist=netlist,
            spec=lock.spec,
            lfsr_taps=lock.lfsr_taps,
            seed=tuple(seed_b),
            secret_key=lock.secret_key,
        )
        oracle_a = lock.make_oracle()
        oracle_b = lock_b.make_oracle()
        for _ in range(8):
            pattern = random_bits(netlist.n_dffs, rng)
            pis = random_bits(len(netlist.inputs), rng)
            assert (
                oracle_a.query(pattern, pis).scan_out
                == oracle_b.query(pattern, pis).scan_out
            )

    def test_survivors_all_grant_scan_access(self):
        """Every candidate surviving replay predicts the oracle exactly,
        whether or not it equals the true seed."""
        rng = random.Random(31)
        config = GeneratorConfig(n_flops=6, n_inputs=3, n_outputs=2)
        netlist = generate_circuit(config, rng, name="surv")
        lock = lock_with_effdyn(netlist, key_bits=5, rng=rng)
        oracle = lock.make_oracle()
        result = dynunlock(
            netlist, lock.public_view(), oracle,
            DynUnlockConfig(candidate_limit=64),
        )
        assert result.success
        sim = CombinationalSimulator(result.model.netlist)
        check_rng = random.Random(99)
        # Check up to four candidates that are consistent with the DIPs.
        for seed in result.seed_candidates[:4]:
            alive = True
            for _ in range(6):
                pattern = random_bits(netlist.n_dffs, check_rng)
                pis = random_bits(len(netlist.inputs), check_rng)
                response = oracle.query(pattern, pis)
                inputs = dict(zip(result.model.a_inputs, pattern))
                inputs.update(zip(result.model.pi_inputs, pis))
                inputs.update(zip(result.model.key_inputs, seed))
                values = sim.run(inputs)
                if [values[n] for n in result.model.b_outputs] != (
                    response.scan_out
                ):
                    alive = False
                    break
            if alive:
                # Survivor: must differ from the truth only by a
                # nullspace vector of the overlay.
                diff = [a ^ b for a, b in zip(seed, lock.seed)]
                if any(diff):
                    m_in, m_out = overlay_matrices(
                        lock.spec, lock.lfsr_taps, lock.key_bits
                    )
                    stacked = GF2Matrix(
                        np.vstack([m_in.data, m_out.data])
                    )
                    assert stacked.mul_vec(diff) == [0] * stacked.n_rows

    def test_full_rank_overlay_forces_exact_recovery(self):
        """With flops >> key bits the overlay is full rank and the attack
        must return the bit-exact seed (the paper's large circuits)."""
        rng = random.Random(41)
        config = GeneratorConfig(n_flops=14, n_inputs=3, n_outputs=2)
        netlist = generate_circuit(config, rng, name="fr")
        lock = lock_with_effdyn(netlist, key_bits=4, rng=rng)
        if stacked_overlay_rank(lock) < lock.key_bits:
            pytest.skip("geometry unexpectedly rank-deficient")
        result = dynunlock(netlist, lock.public_view(), lock.make_oracle())
        assert result.success
        assert result.recovered_seed == list(lock.seed)
