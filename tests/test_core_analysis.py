"""Tests for the GF(2) overlay/candidate analysis and Algorithm 1."""

import random

import pytest

np = pytest.importorskip("numpy")  # whole-module skip on the numpy-less leg

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.core.algorithm1 import algorithm1
from repro.core.analysis import (
    candidate_space_dimension,
    is_affine_space,
    overlay_matrices,
    overlay_rank,
)
from repro.locking.effdyn import lock_with_effdyn
from repro.prng.polynomials import default_taps
from repro.scan.chain import ScanChainSpec, shift_in, shift_out, xor_int
from repro.prng.lfsr import FibonacciLfsr, Keystream
from repro.util.bitvec import random_bits


class TestOverlayMatrices:
    @pytest.mark.parametrize("trial", range(6))
    def test_matrices_predict_concrete_scrambling(self, trial):
        """a' == a ^ M_in seed and b == b' ^ M_out seed, bit-exactly."""
        rng = random.Random(600 + trial)
        n_flops = rng.randint(3, 10)
        n_gates = rng.randint(1, n_flops - 1)
        positions = tuple(sorted(rng.sample(range(n_flops - 1), n_gates)))
        spec = ScanChainSpec(n_flops=n_flops, keygate_positions=positions)
        width = n_gates
        taps = default_taps(max(2, width))
        if width < 2:
            width = 2  # LFSR needs >= 2 bits; extra bit is unused by gates
        seed = random_bits(width, rng)
        while not any(seed):
            seed = random_bits(width, rng)

        m_in, m_out = overlay_matrices(spec, taps, width)
        seed_vec = np.array(seed, dtype=np.uint8)

        stream = Keystream(
            FibonacciLfsr(width=width, seed_bits=seed, taps=taps)
        )
        pattern = random_bits(n_flops, rng)
        load_keys = [stream.next_key() for _ in range(n_flops)]
        applied = shift_in(spec, [0] * n_flops, pattern, load_keys, xor_int)
        predicted_in = [
            p ^ int(x)
            for p, x in zip(pattern, (m_in.data @ seed_vec) & 1)
        ]
        assert applied == predicted_in

        stream.next_key()  # capture edge
        captured = random_bits(n_flops, rng)
        unload_keys = [stream.next_key() for _ in range(n_flops - 1)]
        observed = shift_out(spec, captured, unload_keys, xor_int, 0)
        predicted_out = [
            c ^ int(x)
            for c, x in zip(captured, (m_out.data @ seed_vec) & 1)
        ]
        assert observed == predicted_out

    def test_overlay_rank_bounded_by_width(self):
        spec = ScanChainSpec(n_flops=12, keygate_positions=(0, 3, 7))
        taps = default_taps(3)
        assert overlay_rank(spec, taps, 3) <= 3


class TestCandidateSpace:
    def test_dimension_of_affine_set(self):
        base = [0, 1, 0, 1]
        shift1 = [1, 1, 0, 1]
        shift2 = [0, 1, 1, 1]
        both = [1, 1, 1, 1]
        candidates = [base, shift1, shift2, both]
        assert candidate_space_dimension(candidates) == 2
        assert is_affine_space(candidates)

    def test_single_candidate(self):
        assert candidate_space_dimension([[1, 0, 1]]) == 0
        assert is_affine_space([[1, 0, 1]])

    def test_non_affine_detected(self):
        # Three points whose closure needs a fourth.
        candidates = [[0, 0], [1, 0], [0, 1]]
        assert not is_affine_space(candidates)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            candidate_space_dimension([])


class TestAlgorithm1:
    @pytest.mark.parametrize("trial", range(6))
    def test_algorithm1_matches_simulation(self, trial):
        """The paper's Input(seed, a, b') -> Output(a', b) mapping must
        equal what the cycle-accurate shift machinery produces."""
        rng = random.Random(700 + trial)
        n_flops = rng.randint(3, 9)
        n_gates = rng.randint(1, n_flops - 1)
        positions = tuple(sorted(rng.sample(range(n_flops - 1), n_gates)))
        spec = ScanChainSpec(n_flops=n_flops, keygate_positions=positions)
        width = max(2, n_gates)
        taps = default_taps(width)
        seed = random_bits(width, rng)
        a = random_bits(n_flops, rng)
        b_prime = random_bits(n_flops, rng)

        a_prime, b = algorithm1(spec, taps, seed, a, b_prime)

        stream = Keystream(FibonacciLfsr(width=width, seed_bits=seed, taps=taps))
        load_keys = [stream.next_key() for _ in range(n_flops)]
        assert shift_in(spec, [0] * n_flops, a, load_keys, xor_int) == a_prime
        stream.next_key()
        unload_keys = [stream.next_key() for _ in range(n_flops - 1)]
        assert shift_out(spec, b_prime, unload_keys, xor_int, 0) == b

    def test_length_validation(self):
        spec = ScanChainSpec(n_flops=3, keygate_positions=(0,))
        with pytest.raises(ValueError):
            algorithm1(spec, (0, 1), [1, 0], [0, 0], [0, 0, 0])
        with pytest.raises(ValueError):
            algorithm1(spec, (0, 1), [1, 0], [0, 0, 0], [0, 0])

    def test_seed_must_cover_gates(self):
        spec = ScanChainSpec(n_flops=4, keygate_positions=(0, 1, 2))
        with pytest.raises(ValueError):
            algorithm1(spec, (0, 1), [1, 0], [0] * 4, [0] * 4)


class TestAttackCandidatesAreAffine:
    def test_enumerated_candidates_form_affine_space(self):
        """Reproduces the paper's power-of-two candidate counts."""
        from repro.core.dynunlock import dynunlock

        rng = random.Random(808)
        config = GeneratorConfig(n_flops=5, n_inputs=2, n_outputs=1)
        netlist = generate_circuit(config, rng, name="aff")
        lock = lock_with_effdyn(netlist, key_bits=4, rng=rng)
        result = dynunlock(netlist, lock.public_view(), lock.make_oracle())
        assert result.success
        assert is_affine_space(result.seed_candidates) or (
            len(result.seed_candidates) == 1
        )
