"""Tests for the attack x defense matrix (registry + grid driver).

The guarantees pinned down here are the ones the ``matrix-smoke`` CI
job leans on: duplicate plugin names rejected, ``applicable_to``
filtering by defense name and by oracle model, n/a pairs skipped (never
executed), serial/parallel row equality, resume from a partially
completed grid, and the Table I expectation diff.
"""

import pytest

from repro.matrix.grid import (
    MATRIX_HEADERS,
    MatrixRow,
    PAPER_EXPECTATIONS,
    check_against_paper,
    default_matrix_benchmarks,
    matrix_cell,
    matrix_rows,
    matrix_specs,
    run_matrix,
)
from repro.matrix.registry import (
    RegistryError,
    applicable_pairs,
    attack_names,
    defense_names,
    get_attack,
    get_defense,
    is_applicable,
    register_attack,
    register_defense,
    temporary_registrations,
)
from repro.reports.profiles import ExperimentProfile
from repro.runner.scheduler import run_jobs
from repro.runner.store import ResultStore

TINY = ExperimentProfile(
    name="tiny",
    scale=64,
    key_bits=6,
    n_seeds=1,
    timeout_s=120.0,
    table3_key_sizes=(6,),
)

# A fast sub-grid: two defenses, three attacks, four applicable pairs.
SUB_DEFENSES = ["eff", "rll"]
SUB_ATTACKS = ["scansat", "sat", "bruteforce"]
SUB_BENCH = ["s5378"]


def _dummy_lock(netlist, key_bits, rng, **params):
    raise NotImplementedError


def _dummy_attack(lock, *, profile, timeout_s):
    raise NotImplementedError


class TestRegistry:
    def test_builtins_registered(self):
        assert set(PAPER_EXPECTATIONS) <= set(applicable_pairs())
        assert {"sarlock", "scramble"} <= set(defense_names())
        assert {"scramble-sat", "bruteforce"} <= set(attack_names())

    def test_duplicate_defense_rejected(self):
        with temporary_registrations():
            register_defense("dup-d", _dummy_lock, oracle_model="x")
            with pytest.raises(RegistryError, match="already registered"):
                register_defense("dup-d", _dummy_lock, oracle_model="x")

    def test_duplicate_attack_rejected(self):
        with temporary_registrations():
            register_attack("dup-a", _dummy_attack, applicable_to=("x",))
            with pytest.raises(RegistryError, match="already registered"):
                register_attack("dup-a", _dummy_attack, applicable_to=("x",))

    def test_attack_needs_targets(self):
        with temporary_registrations():
            with pytest.raises(RegistryError, match="at least one defense"):
                register_attack("aimless", _dummy_attack, applicable_to=())

    def test_unknown_names_raise_with_known_list(self):
        with pytest.raises(KeyError, match="known"):
            get_defense("nope")
        with pytest.raises(KeyError, match="known"):
            get_attack("nope")

    def test_applicability_by_name_and_by_oracle_model(self):
        with temporary_registrations():
            d1 = register_defense("d1", _dummy_lock, oracle_model="modelA")
            d2 = register_defense("d2", _dummy_lock, oracle_model="modelB")
            by_name = register_attack(
                "by-name", _dummy_attack, applicable_to=("d1",)
            )
            by_model = register_attack(
                "by-model", _dummy_attack, applicable_to=("modelB",)
            )
            assert is_applicable(by_name, d1) and not is_applicable(by_name, d2)
            assert is_applicable(by_model, d2) and not is_applicable(by_model, d1)
            # A later defense sharing modelB picks up the attack for free.
            d3 = register_defense("d3", _dummy_lock, oracle_model="modelB")
            assert is_applicable(by_model, d3)

    def test_builtin_sat_attack_targets_comb_io_family(self):
        sat = get_attack("sat")
        assert is_applicable(sat, get_defense("rll"))
        assert is_applicable(sat, get_defense("sarlock"))
        assert not is_applicable(sat, get_defense("effdyn"))


class TestTemporaryRegistrations:
    """The context manager the fuzzer's throwaway plugins rely on: what
    happens inside must not leak out, in any order-observable way."""

    def test_restores_registration_order_exactly(self):
        defenses_before = defense_names()
        attacks_before = attack_names()
        with temporary_registrations():
            register_defense("zz-temp", _dummy_lock, oracle_model="zz")
            register_attack("zz-hit", _dummy_attack, applicable_to=("zz",))
            # Inside: appended at the end, original prefix untouched.
            assert defense_names() == defenses_before + ["zz-temp"]
            assert attack_names() == attacks_before + ["zz-hit"]
        # Outside: the exact original sequences (order is the rendered
        # matrix row order, so order equality matters, not set equality).
        assert defense_names() == defenses_before
        assert attack_names() == attacks_before

    def test_duplicates_of_builtins_rejected_inside_the_context(self):
        existing_defense = defense_names()[0]
        existing_attack = attack_names()[0]
        with temporary_registrations():
            with pytest.raises(RegistryError, match="already registered"):
                register_defense(
                    existing_defense, _dummy_lock, oracle_model="x"
                )
            with pytest.raises(RegistryError, match="already registered"):
                register_attack(
                    existing_attack, _dummy_attack, applicable_to=("x",)
                )

    def test_inner_registrations_are_unknown_after_exit(self):
        with temporary_registrations():
            register_defense("ghost-d", _dummy_lock, oracle_model="g")
            register_attack("ghost-a", _dummy_attack, applicable_to=("g",))
        with pytest.raises(KeyError):
            get_defense("ghost-d")
        with pytest.raises(KeyError):
            get_attack("ghost-a")
        # Re-registering after exit works: nothing half-leaked.
        with temporary_registrations():
            register_defense("ghost-d", _dummy_lock, oracle_model="g")

    def test_restores_even_when_the_body_raises(self):
        defenses_before = defense_names()
        with pytest.raises(RuntimeError):
            with temporary_registrations():
                register_defense("doomed", _dummy_lock, oracle_model="d")
                raise RuntimeError("boom")
        assert defense_names() == defenses_before


class TestSpecEnumeration:
    def test_na_pairs_never_enumerated(self):
        specs = matrix_specs(TINY, benchmarks=SUB_BENCH)
        pairs = {(s.params["attack"], s.params["defense"]) for s in specs}
        assert pairs == set(applicable_pairs())
        assert ("scansat", "dfs") not in pairs
        assert ("dynunlock", "eff") not in pairs

    def test_na_cell_refuses_to_run(self):
        with pytest.raises(ValueError, match="n/a cells must be skipped"):
            matrix_cell(
                TINY,
                attack="scansat",
                defense="dfs",
                benchmark="s5378",
                seed_index=0,
            )

    def test_default_benchmarks_are_the_two_smallest(self):
        from repro.bench_suite.registry import smallest_benchmarks

        assert default_matrix_benchmarks(TINY) == smallest_benchmarks(
            2, scale=TINY.scale
        )
        assert len(default_matrix_benchmarks(TINY)) == 2

    def test_filtered_specs_respect_lists(self):
        specs = matrix_specs(
            TINY, attacks=SUB_ATTACKS, defenses=SUB_DEFENSES, benchmarks=SUB_BENCH
        )
        assert {(s.params["attack"], s.params["defense"]) for s in specs} == {
            ("scansat", "eff"),
            ("bruteforce", "eff"),
            ("sat", "rll"),
            ("bruteforce", "rll"),
        }


class TestGridExecution:
    def _run(self, *, jobs=1, store=None):
        return run_matrix(
            TINY,
            jobs=jobs,
            store=store,
            attacks=SUB_ATTACKS,
            defenses=SUB_DEFENSES,
            benchmarks=SUB_BENCH,
        )

    @staticmethod
    def _stable(row: MatrixRow) -> tuple:
        """Row identity minus the wall-clock column."""
        return (
            row.defense,
            row.attack,
            row.verdict,
            row.n_cells,
            row.n_broken,
            row.key_bits,
            row.iterations,
            row.queries,
            row.verified,
        )

    def test_rows_cover_full_subgrid_with_na(self):
        rows, report = self._run()
        assert len(rows) == len(SUB_DEFENSES) * len(SUB_ATTACKS)
        verdicts = {(r.attack, r.defense): r.verdict for r in rows}
        assert verdicts[("scansat", "eff")] == "broken"
        assert verdicts[("sat", "rll")] == "broken"
        assert verdicts[("sat", "eff")] == "n/a"
        assert verdicts[("scansat", "rll")] == "n/a"
        assert report.n_computed == 4
        for row in rows:
            assert len(row.as_cells()) == len(MATRIX_HEADERS)

    def test_parallel_rows_equal_serial_rows(self):
        serial, _ = self._run(jobs=1)
        parallel, _ = self._run(jobs=2)
        assert [self._stable(r) for r in serial] == [
            self._stable(r) for r in parallel
        ]

    def test_jobs1_and_jobsN_byte_identical_through_store(self, tmp_path):
        store = ResultStore(tmp_path)
        serial, first = self._run(jobs=1, store=store)
        parallel, second = self._run(jobs=2, store=store)
        assert serial == parallel  # dataclass equality, time column included
        assert first.n_computed == 4 and second.n_cached == 4

    def test_resume_from_partially_completed_grid(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = matrix_specs(
            TINY, attacks=SUB_ATTACKS, defenses=SUB_DEFENSES, benchmarks=SUB_BENCH
        )
        # Simulate an interrupted grid: only the first half completed.
        partial = run_jobs(specs[: len(specs) // 2], store=store)
        assert partial.n_computed == len(specs) // 2
        rows, report = self._run(store=store)
        assert report.n_cached == len(specs) // 2
        assert report.n_computed == len(specs) - len(specs) // 2
        assert all(r.verdict in ("broken", "n/a") for r in rows)

    def test_aggregation_requires_matching_lists(self):
        _, report = self._run()
        with pytest.raises(ValueError, match="no cells for applicable pair"):
            matrix_rows(report.outcomes)  # defaults cover the full registry

    def test_mixed_key_widths_render_as_a_range(self):
        from types import SimpleNamespace

        from repro.runner.spec import JobSpec

        def outcome(benchmark, key_bits):
            spec = JobSpec.make(
                "matrix",
                TINY,
                attack="scansat",
                defense="eff",
                benchmark=benchmark,
                seed_index=0,
            )
            return SimpleNamespace(
                spec=spec,
                result={
                    "key_bits": key_bits,
                    "success": True,
                    "verified": True,
                    "iterations": 1,
                    "queries": 1,
                    "time_s": 0.1,
                },
            )

        rows = matrix_rows(
            [outcome("s5378", 4), outcome("s35932", 6)],
            attacks=["scansat"],
            defenses=["eff"],
        )
        assert rows[0].key_bits == "4-6"
        uniform = matrix_rows(
            [outcome("s5378", 4), outcome("s35932", 4)],
            attacks=["scansat"],
            defenses=["eff"],
        )
        assert uniform[0].key_bits == 4


class TestPaperCheck:
    @staticmethod
    def _row(attack, defense, verdict):
        return MatrixRow(
            defense=defense,
            attack=attack,
            defense_display=defense,
            attack_display=attack,
            verdict=verdict,
            n_cells=2,
            n_broken=2 if verdict == "broken" else 0,
            key_bits=8,
            iterations=1.0,
            queries=1.0,
            time_s=0.1,
            verified=verdict == "broken",
        )

    def test_agreement_is_silent(self):
        rows = [self._row(a, d, "broken") for (a, d) in PAPER_EXPECTATIONS]
        assert check_against_paper(rows) == []

    def test_disagreement_is_reported(self):
        rows = [self._row("scansat", "eff", "resilient")]
        mismatches = check_against_paper(rows)
        assert len(mismatches) == 1
        assert "scansat vs eff" in mismatches[0]
        assert "paper says broken" in mismatches[0]

    def test_unlisted_pairs_are_ignored(self):
        rows = [self._row("bruteforce", "sarlock", "resilient")]
        assert check_against_paper(rows) == []


class TestMatrixCellDeterminism:
    def test_cell_is_reproducible(self):
        kwargs = dict(
            attack="scansat", defense="eff", benchmark="s5378", seed_index=0
        )
        first = matrix_cell(TINY, **kwargs)
        second = matrix_cell(TINY, **kwargs)
        first.pop("time_s"), second.pop("time_s")
        first.pop("detail"), second.pop("detail")
        assert first == second

    def test_cell_reports_realised_key_bits(self):
        cell = matrix_cell(
            TINY,
            attack="scramble-sat",
            defense="scramble",
            benchmark="s5378",
            seed_index=0,
        )
        # The scramble lock realises one key bit per equal-length chain
        # pair; on the tiny 16-flop instance that is the default 4.
        assert cell["key_bits"] == 4
        assert cell["success"] and cell["verified"]

    def test_bruteforce_refuses_ambiguous_point_function_survivors(self):
        # Random replay cannot distinguish point-function keys (each
        # wrong key errs on exactly one input), so brute force must
        # report failure rather than bless an arbitrary survivor.
        cell = matrix_cell(
            TINY,
            attack="bruteforce",
            defense="sarlock",
            benchmark="s5378",
            seed_index=0,
        )
        assert not cell["success"] and not cell["verified"]
        assert "indistinguishable" in cell["detail"]

    def test_defense_default_key_bits_apply(self):
        cell = matrix_cell(
            TINY, attack="sat", defense="sarlock", benchmark="s5378", seed_index=0
        )
        assert cell["key_bits"] == 6  # the sarlock plugin's default width
        # The point function's signature cost: ~one DIP per wrong key.
        assert cell["iterations"] >= 2**6 - 4
