"""Tests for the stopwatch utility."""

import time

import pytest

from repro.util.timing import Stopwatch


class TestStopwatch:
    def test_measures_elapsed_time(self):
        watch = Stopwatch().start()
        time.sleep(0.01)
        total = watch.stop()
        assert total >= 0.01

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_accumulates_across_sessions(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.005)
        first = watch.stop()
        watch.start()
        time.sleep(0.005)
        second = watch.stop()
        assert second > first

    def test_laps_accumulate_by_name(self):
        watch = Stopwatch()
        with watch.lap("phase"):
            time.sleep(0.005)
        with watch.lap("phase"):
            time.sleep(0.005)
        with watch.lap("other"):
            pass
        assert watch.laps["phase"] >= 0.01
        assert "other" in watch.laps

    def test_lap_records_even_on_exception(self):
        watch = Stopwatch()
        with pytest.raises(ValueError):
            with watch.lap("boom"):
                raise ValueError("x")
        assert "boom" in watch.laps
