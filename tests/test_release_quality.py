"""Release-quality gates: documentation coverage and doc consistency.

A reproduction repo lives or dies by its documentation; these tests keep
it honest: every public module/class/function carries a docstring, the
top-level docs exist and reference files that are actually in the tree,
and the examples advertised by the README are runnable scripts.
"""

import ast
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def public_python_files():
    return sorted(
        p for p in SRC.rglob("*.py") if not p.name.startswith("_")
        or p.name == "__init__.py"
    )


class TestDocstringCoverage:
    @pytest.mark.parametrize(
        "path", public_python_files(), ids=lambda p: str(p.relative_to(SRC))
    )
    def test_module_has_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path} lacks a module docstring"

    def test_public_classes_and_functions_documented(self):
        undocumented: list[str] = []
        for path in public_python_files():
            tree = ast.parse(path.read_text())
            for node in tree.body:
                if isinstance(node, (ast.ClassDef, ast.FunctionDef)):
                    if node.name.startswith("_"):
                        continue
                    if not ast.get_docstring(node):
                        undocumented.append(
                            f"{path.relative_to(SRC)}::{node.name}"
                        )
        assert not undocumented, f"missing docstrings: {undocumented}"


class TestTopLevelDocs:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO / name).is_file(), f"{name} is missing"

    def test_design_references_existing_modules(self):
        text = (REPO / "DESIGN.md").read_text()
        for module in re.findall(r"`repro\.([a-z_0-9.]+)`", text):
            parts = module.split(".")
            candidate = SRC.joinpath(*parts)
            assert (
                candidate.with_suffix(".py").exists()
                or (candidate / "__init__.py").exists()
            ), f"DESIGN.md references repro.{module} which does not exist"

    def test_experiments_references_existing_paths(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for rel in re.findall(r"`((?:tests|benchmarks|examples)/[\w./]+)`", text):
            assert (REPO / rel).exists(), f"EXPERIMENTS.md references {rel}"

    def test_readme_examples_exist_and_are_scripts(self):
        text = (REPO / "README.md").read_text()
        examples = set(re.findall(r"`(examples/[\w_]+\.py)`", text))
        assert len(examples) >= 3, "README must advertise >= 3 examples"
        for rel in examples:
            path = REPO / rel
            assert path.is_file(), f"README references {rel}"
            source = path.read_text()
            assert "def main" in source and "__main__" in source

    def test_design_lists_every_subpackage(self):
        text = (REPO / "DESIGN.md").read_text()
        for pkg in sorted(p.name for p in SRC.iterdir() if p.is_dir()):
            if pkg.startswith("__"):
                continue
            assert f"repro.{pkg}" in text, (
                f"DESIGN.md does not mention subpackage repro.{pkg}"
            )


class TestPackagingMetadata:
    def test_version_exposed(self):
        import repro

        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)

    def test_cli_entry_point_matches_module(self):
        text = (REPO / "pyproject.toml").read_text()
        assert 'dynunlock = "repro.cli:main"' in text
        from repro.cli import main  # noqa: F401  (importable)
