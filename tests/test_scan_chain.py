"""Tests for scan-chain geometry and the generic shift semantics."""

import pytest

from repro.scan.chain import (
    ScanChainSpec,
    shift_cycle,
    shift_in,
    shift_out,
    shift_out_start_indices,
    xor_int,
)


class TestScanChainSpec:
    def test_valid_spec(self):
        spec = ScanChainSpec(n_flops=8, keygate_positions=(0, 1, 4))
        assert spec.n_keygates == 3

    def test_from_paper_positions_matches_fig1(self):
        # Fig. 1: key gates after the 1st, 2nd and 5th scan flops of s208.
        spec = ScanChainSpec.from_paper_positions(8, [1, 2, 5])
        assert spec.keygate_positions == (0, 1, 4)

    def test_position_out_of_range(self):
        with pytest.raises(ValueError):
            ScanChainSpec(n_flops=4, keygate_positions=(3,))  # last slot is 2

    def test_duplicate_positions(self):
        with pytest.raises(ValueError):
            ScanChainSpec(n_flops=4, keygate_positions=(1, 1))

    def test_unsorted_positions(self):
        with pytest.raises(ValueError):
            ScanChainSpec(n_flops=4, keygate_positions=(2, 0))

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            ScanChainSpec(n_flops=0)

    def test_gate_at(self):
        spec = ScanChainSpec(n_flops=8, keygate_positions=(0, 1, 4))
        assert spec.gate_at(0) == 0
        assert spec.gate_at(4) == 2
        assert spec.gate_at(3) is None


class TestShiftCycle:
    def test_plain_shift(self):
        spec = ScanChainSpec(n_flops=3)
        assert shift_cycle(spec, [1, 0, 1], 0, [], xor_int) == [0, 1, 0]

    def test_keyed_shift(self):
        spec = ScanChainSpec(n_flops=3, keygate_positions=(1,))
        # Gate after position 1 flips the bit moving into position 2.
        assert shift_cycle(spec, [0, 1, 0], 1, [1], xor_int) == [1, 0, 0]
        assert shift_cycle(spec, [0, 1, 0], 1, [0], xor_int) == [1, 0, 1]

    def test_state_length_checked(self):
        spec = ScanChainSpec(n_flops=3)
        with pytest.raises(ValueError):
            shift_cycle(spec, [1, 0], 0, [], xor_int)

    def test_key_length_checked(self):
        spec = ScanChainSpec(n_flops=3, keygate_positions=(0,))
        with pytest.raises(ValueError):
            shift_cycle(spec, [1, 0, 0], 0, [], xor_int)


class TestShiftInOut:
    def test_unkeyed_load_places_pattern_by_position(self):
        spec = ScanChainSpec(n_flops=5)
        pattern = [1, 0, 1, 1, 0]
        keys = [[] for _ in range(5)]
        assert shift_in(spec, [0] * 5, pattern, keys, xor_int) == pattern

    def test_unkeyed_unload_returns_capture_by_position(self):
        spec = ScanChainSpec(n_flops=5)
        captured = [0, 1, 1, 0, 1]
        keys = [[] for _ in range(4)]
        assert shift_out(spec, captured, keys, xor_int, 0) == captured

    def test_keyed_roundtrip_with_zero_keys_is_transparent(self):
        spec = ScanChainSpec(n_flops=6, keygate_positions=(0, 2, 4))
        pattern = [1, 1, 0, 1, 0, 0]
        zero = [[0, 0, 0]] * 6
        assert shift_in(spec, [0] * 6, pattern, zero, xor_int) == pattern

    def test_constant_one_keys_flip_by_crossing_count(self):
        """With all key bits stuck at 1, bit l flips once per gate below l."""
        spec = ScanChainSpec(n_flops=4, keygate_positions=(0, 1, 2))
        pattern = [0, 0, 0, 0]
        ones = [[1, 1, 1]] * 4
        applied = shift_in(spec, [0] * 4, pattern, ones, xor_int)
        # Bit l crosses l gates (all gates below l), so parity = l mod 2.
        assert applied == [0, 1, 0, 1]

    def test_shift_out_start_indices(self):
        assert shift_out_start_indices(4) == [3, 2, 1, 0]

    def test_pattern_length_checked(self):
        spec = ScanChainSpec(n_flops=3)
        with pytest.raises(ValueError):
            shift_in(spec, [0] * 3, [1, 0], [[]] * 3, xor_int)

    def test_key_schedule_length_checked(self):
        spec = ScanChainSpec(n_flops=3)
        with pytest.raises(ValueError):
            shift_in(spec, [0] * 3, [1, 0, 1], [[]] * 2, xor_int)
        with pytest.raises(ValueError):
            shift_out(spec, [0] * 3, [[]], xor_int, 0)
