"""Tests for the AppSAT approximate attack."""

import random

from repro.attack.appsat import AppSat, AppSatConfig
from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.locking.rll import lock_combinational_rll
from repro.netlist.transform import extract_combinational_core
from repro.sim.logicsim import CombinationalSimulator
from repro.util.bitvec import random_bits


def make_case(seed: int, key_bits: int = 5):
    rng = random.Random(seed)
    config = GeneratorConfig(n_flops=5, n_inputs=5, n_outputs=4)
    core, _, _ = extract_combinational_core(
        generate_circuit(config, rng, name=f"app{seed}")
    )
    lock = lock_combinational_rll(core, key_bits=key_bits, rng=rng)
    oracle_sim = CombinationalSimulator(core)
    x_inputs = [n for n in lock.locked.inputs if n not in set(lock.key_inputs)]

    def oracle_fn(x_bits):
        values = oracle_sim.run(dict(zip(x_inputs, x_bits)))
        return [values[n] for n in core.outputs]

    return core, lock, oracle_fn, x_inputs


class TestAppSat:
    def test_terminates_with_low_error_key(self):
        core, lock, oracle_fn, x_inputs = make_case(1)
        result = AppSat(lock.locked, lock.key_inputs, oracle_fn).run()
        assert result.key is not None
        assert result.exact_convergence or result.early_exit
        # Measure the real error of the returned key on fresh samples.
        rng = random.Random(99)
        locked_sim = CombinationalSimulator(lock.locked)
        errors = 0
        for _ in range(50):
            x_bits = random_bits(len(x_inputs), rng)
            inputs = dict(zip(x_inputs, x_bits))
            inputs.update(zip(lock.key_inputs, result.key))
            values = locked_sim.run(inputs)
            if [values[n] for n in lock.locked.outputs] != oracle_fn(x_bits):
                errors += 1
        assert errors / 50 <= 0.1

    def test_early_exit_can_precede_exact_convergence(self):
        """With aggressive sampling settings AppSAT may stop early; either
        way the loop ends and reports which exit fired."""
        core, lock, oracle_fn, _ = make_case(2)
        config = AppSatConfig(sample_interval=1, samples_per_round=8,
                              settle_rounds=1)
        result = AppSat(lock.locked, lock.key_inputs, oracle_fn, config).run()
        assert result.key is not None
        assert result.exact_convergence != result.early_exit or (
            result.exact_convergence and not result.early_exit
        )

    def test_sampling_counts_reported(self):
        core, lock, oracle_fn, _ = make_case(3)
        config = AppSatConfig(sample_interval=1, samples_per_round=4)
        result = AppSat(lock.locked, lock.key_inputs, oracle_fn, config).run()
        if result.early_exit:
            assert result.sampled_queries >= 4
        assert result.iterations >= 0
