"""Tests for the base oracle-guided SAT attack on combinational locks."""

import random

import pytest

from repro.attack.satattack import IterationRecord, SatAttack, SatAttackConfig
from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.locking.rll import lock_combinational_rll
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.transform import extract_combinational_core
from repro.sim.logicsim import CombinationalSimulator


def make_rll_case(seed: int, key_bits: int = 5):
    rng = random.Random(seed)
    config = GeneratorConfig(n_flops=5, n_inputs=5, n_outputs=4)
    netlist = generate_circuit(config, rng, name=f"case{seed}")
    core, _, _ = extract_combinational_core(netlist)
    lock = lock_combinational_rll(core, key_bits=key_bits, rng=rng)
    oracle_sim = CombinationalSimulator(core)
    x_inputs = [n for n in lock.locked.inputs if n not in set(lock.key_inputs)]

    def oracle_fn(x_bits):
        values = oracle_sim.run(dict(zip(x_inputs, x_bits)))
        return [values[n] for n in core.outputs]

    return core, lock, oracle_fn, x_inputs


class TestSatAttackOnRll:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_recovers_functionally_correct_key(self, seed):
        core, lock, oracle_fn, x_inputs = make_rll_case(seed)
        attack = SatAttack(lock.locked, lock.key_inputs, oracle_fn)
        result = attack.run()
        assert result.converged
        assert result.key_candidates, "converged attack must yield candidates"
        # Every surviving candidate must be functionally correct on random
        # patterns (the SAT attack guarantee).
        rng = random.Random(seed + 999)
        locked_sim = CombinationalSimulator(lock.locked)
        for candidate in result.key_candidates[:4]:
            for _ in range(10):
                x_bits = [rng.randrange(2) for _ in x_inputs]
                inputs = dict(zip(x_inputs, x_bits))
                inputs.update(zip(lock.key_inputs, candidate))
                values = locked_sim.run(inputs)
                assert [
                    values[n] for n in lock.locked.outputs
                ] == oracle_fn(x_bits)

    def test_secret_key_among_candidates(self):
        core, lock, oracle_fn, _ = make_rll_case(11)
        result = SatAttack(lock.locked, lock.key_inputs, oracle_fn).run()
        assert list(lock.secret_key) in result.key_candidates

    def test_session_stays_usable_after_enumeration(self):
        # Enumeration blocks candidates through a retractable group, so
        # the public incremental session must still see every candidate
        # after run() returns.
        core, lock, oracle_fn, x_inputs = make_rll_case(13)
        attack = SatAttack(lock.locked, lock.key_inputs, oracle_fn)
        result = attack.run()
        assert result.converged and result.key_candidates
        key = attack.current_key()
        assert key is not None
        assert key in result.key_candidates
        # The session must also survive further growth: stamping another
        # constraint copy after run() (variable ids must not collide with
        # the enumeration group's activation variable).
        rng = random.Random(77)
        for _ in range(4):
            x_bits = [rng.randrange(2) for _ in x_inputs]
            attack.add_dip_constraint(x_bits, oracle_fn(x_bits))
            key = attack.current_key()
            assert key is not None
            assert key in result.key_candidates

    def test_iteration_hook_fires(self):
        core, lock, oracle_fn, _ = make_rll_case(12)
        records: list[IterationRecord] = []
        config = SatAttackConfig(iteration_hook=records.append)
        result = SatAttack(lock.locked, lock.key_inputs, oracle_fn, config).run()
        assert len(records) == result.iterations
        for i, record in enumerate(records, start=1):
            assert record.iteration == i
            assert record.n_clauses > 0

    def test_fixed_key_bits_constrain_candidates(self):
        core, lock, oracle_fn, _ = make_rll_case(13)
        forced = {0: lock.secret_key[0]}
        result = SatAttack(
            lock.locked, lock.key_inputs, oracle_fn, fixed_key_bits=forced
        ).run()
        assert result.converged
        for candidate in result.key_candidates:
            assert candidate[0] == lock.secret_key[0]

    def test_max_iterations_budget(self):
        core, lock, oracle_fn, _ = make_rll_case(14)
        config = SatAttackConfig(max_iterations=0)
        result = SatAttack(lock.locked, lock.key_inputs, oracle_fn, config).run()
        assert not result.converged
        assert result.iterations == 0


class TestSatAttackValidation:
    def test_unknown_key_input_rejected(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate("y", GateType.BUF, ["a"])
        netlist.add_output("y")
        with pytest.raises(ValueError):
            SatAttack(netlist, ["nokey"], lambda x: x)

    def test_wrong_oracle_width_detected(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_input("k")
        netlist.add_gate("y", GateType.XOR, ["a", "k"])
        netlist.add_output("y")
        attack = SatAttack(netlist, ["k"], lambda x: [0, 1])
        with pytest.raises(ValueError):
            attack.run()


class TestKnownTinyLock:
    def test_single_xor_key(self):
        """y = a XOR k locked circuit, oracle says y = a: key must be 0."""
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_input("k")
        netlist.add_gate("y", GateType.XOR, ["a", "k"])
        netlist.add_output("y")
        result = SatAttack(netlist, ["k"], lambda x: [x[0]]).run()
        assert result.converged
        assert result.key_candidates == [[0]]
        assert result.fixed_key_bits == {0: 0}
        assert result.iterations >= 1

    def test_xnor_key(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_input("k")
        netlist.add_gate("y", GateType.XNOR, ["a", "k"])
        netlist.add_output("y")
        result = SatAttack(netlist, ["k"], lambda x: [x[0]]).run()
        assert result.key_candidates == [[1]]

    def test_unconstrained_key_gives_all_candidates(self):
        """A key that never reaches an output leaves the space intact."""
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_input("k")
        netlist.add_gate("dead", GateType.BUF, ["k"])
        netlist.add_gate("y", GateType.BUF, ["a"])
        netlist.add_output("y")
        result = SatAttack(netlist, ["k"], lambda x: [x[0]]).run()
        assert result.converged
        assert result.iterations == 0  # no DIP can exist
        assert sorted(result.key_candidates) == [[0], [1]]
        assert result.fixed_key_bits == {}
