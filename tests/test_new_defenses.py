"""Tests for the defenses added beyond the paper (SARLock, scramble).

Each scheme is pinned on three levels: functional correctness (the
correct key restores the original behaviour), the defense's signature
property (point-function corruption / chain permutation), and the
characterizing attack recovering a verified key through the oracle.
"""

import random

import pytest

from repro.attack.satattack import SatAttack, SatAttackConfig
from repro.attack.scramble_sat import build_scramble_model, scramble_sat_on_lock
from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.locking.iolock import lock_core_with_rll
from repro.locking.sarlock import lock_with_sarlock
from repro.locking.scramble import (
    balanced_swap_layout,
    lock_with_scramble,
    swap_index_map,
)
from repro.sim.logicsim import CombinationalSimulator
from repro.util.bitvec import random_bits


def small_netlist(n_flops=12, n_inputs=4, n_outputs=3, seed=11):
    rng = random.Random(seed)
    return generate_circuit(
        GeneratorConfig(
            n_flops=n_flops, n_inputs=n_inputs, n_outputs=n_outputs
        ),
        rng,
        name="tiny",
    )


def locked_outputs(lock, x_bits, key):
    """Evaluate a locked IoLock core under an explicit key."""
    sim = CombinationalSimulator(lock.locked)
    x_nets = [n for n in lock.locked.inputs if n not in set(lock.key_inputs)]
    inputs = dict(zip(x_nets, x_bits))
    inputs.update(zip(lock.key_inputs, key))
    values = sim.run(inputs)
    return [values[net] for net in lock.locked.outputs]


class TestIoLock:
    def test_rll_correct_key_restores_function(self):
        netlist = small_netlist()
        lock = lock_core_with_rll(netlist, key_bits=5, rng=random.Random(3))
        oracle = lock.make_oracle()
        rng = random.Random(7)
        for _ in range(16):
            x = random_bits(len(oracle.inputs), rng)
            assert locked_outputs(lock, x, lock.secret_key) == oracle.query(x)

    def test_oracle_counts_and_validates_queries(self):
        lock = lock_core_with_rll(small_netlist(), 4, random.Random(1))
        oracle = lock.make_oracle()
        assert oracle.query_count == 0
        oracle.query([0] * len(oracle.inputs))
        assert oracle.query_count == 1
        with pytest.raises(ValueError, match="input bits"):
            oracle.query([0])


class TestSarLock:
    KEY_BITS = 4

    def _lock(self):
        return lock_with_sarlock(
            small_netlist(), key_bits=self.KEY_BITS, rng=random.Random(5)
        )

    def test_correct_key_restores_function(self):
        lock = self._lock()
        oracle = lock.make_oracle()
        rng = random.Random(23)
        for _ in range(20):
            x = random_bits(len(oracle.inputs), rng)
            assert locked_outputs(lock, x, lock.secret_key) == oracle.query(x)

    def test_wrong_key_errs_on_exactly_its_point_input(self):
        lock = self._lock()
        oracle = lock.make_oracle()
        k = self.KEY_BITS
        wrong = [1 - lock.secret_key[0]] + list(lock.secret_key[1:])
        rng = random.Random(29)
        tail = random_bits(len(oracle.inputs) - k, rng)
        # At X[:k] == wrong key: the protected output flips.
        hit = locked_outputs(lock, wrong + tail, wrong)
        assert hit != oracle.query(wrong + tail)
        # Anywhere else the comparator is cold and the output is correct.
        miss_head = list(lock.secret_key)
        assert locked_outputs(lock, miss_head + tail, wrong) == oracle.query(
            miss_head + tail
        )

    def test_sat_attack_needs_one_dip_per_wrong_key(self):
        lock = self._lock()
        oracle = lock.make_oracle()
        attack = SatAttack(
            locked=lock.locked,
            key_inputs=lock.key_inputs,
            oracle_fn=oracle.query,
            config=SatAttackConfig(candidate_limit=4),
        )
        result = attack.run()
        assert result.converged
        assert result.iterations >= 2**self.KEY_BITS - 2
        assert result.key_candidates == [list(lock.secret_key)]

    def test_rejects_degenerate_widths(self):
        with pytest.raises(ValueError, match="at least 2"):
            lock_with_sarlock(small_netlist(), 1, random.Random(0))
        with pytest.raises(ValueError, match="comparator inputs"):
            lock_with_sarlock(small_netlist(), 10_000, random.Random(0))


class TestSwapLayout:
    def test_pairs_are_disjoint_and_equal_length(self):
        for n_flops in (8, 13, 16, 21, 40):
            spec, pairs = balanced_swap_layout(n_flops, key_bits=4)
            used: set[int] = set()
            for c1, c2 in pairs:
                assert spec.chain_lengths[c1] == spec.chain_lengths[c2]
                assert not {c1, c2} & used
                used |= {c1, c2}
            assert len(pairs) <= 4

    def test_swap_index_map_is_an_involution(self):
        spec, pairs = balanced_swap_layout(17, key_bits=3)
        for key_value in range(2 ** len(pairs)):
            key = [(key_value >> t) & 1 for t in range(len(pairs))]
            mapping = swap_index_map(spec, pairs, key)
            assert sorted(mapping) == list(range(spec.n_flops))
            assert all(mapping[mapping[g]] == g for g in range(spec.n_flops))

    def test_rejects_unscrambleable_inputs(self):
        with pytest.raises(ValueError, match="at least one key bit"):
            balanced_swap_layout(8, 0)
        with pytest.raises(ValueError, match=">= 2 chains"):
            balanced_swap_layout(1, 1)


class TestScramble:
    def _lock(self, secret=None, seed=13):
        return lock_with_scramble(
            small_netlist(n_flops=16, n_inputs=5, n_outputs=4, seed=2),
            key_bits=4,
            rng=random.Random(seed),
            secret_key=secret,
        )

    def test_zero_key_is_transparent(self):
        lock = self._lock(secret=[0, 0, 0, 0])
        oracle = lock.make_oracle()
        plain = lock_with_scramble(
            lock.netlist, key_bits=4, rng=random.Random(1), secret_key=[0] * 4
        ).make_oracle()
        rng = random.Random(31)
        pattern = random_bits(16, rng)
        pis = random_bits(5, rng)
        a = oracle.query(pattern, pis)
        b = plain.query(pattern, pis)
        assert a.scan_out == b.scan_out and a.primary_outputs == b.primary_outputs

    def test_model_matches_oracle_under_the_secret_key(self):
        lock = self._lock()
        oracle = lock.make_oracle()
        model = build_scramble_model(lock.netlist, lock.public_view())
        sim = CombinationalSimulator(model.netlist)
        rng = random.Random(37)
        for _ in range(12):
            pattern = random_bits(16, rng)
            pis = random_bits(5, rng)
            response = oracle.query(pattern, pis)
            inputs = dict(zip(model.a_inputs, pattern))
            inputs.update(zip(model.pi_inputs, pis))
            inputs.update(zip(model.key_inputs, lock.secret_key))
            values = sim.run(inputs)
            predicted = [values[n] for n in model.observed_outputs]
            observed = list(response.scan_out) + list(response.primary_outputs)
            assert predicted == observed

    def test_nonzero_key_actually_permutes(self):
        lock = self._lock(secret=[1, 0, 0, 0])
        scrambled = lock.make_oracle()
        transparent = lock_with_scramble(
            lock.netlist, key_bits=4, rng=random.Random(1), secret_key=[0] * 4
        ).make_oracle()
        rng = random.Random(41)
        differs = False
        for _ in range(8):
            pattern = random_bits(16, rng)
            if (
                scrambled.query(pattern).scan_out
                != transparent.query(pattern).scan_out
            ):
                differs = True
                break
        assert differs, "an active swap must be tester-visible"

    def test_attack_recovers_a_verified_routing_key(self):
        lock = self._lock()
        result = scramble_sat_on_lock(lock)
        assert result.success
        assert result.recovered_key == list(lock.secret_key)

    def test_explicit_secret_key_width_checked(self):
        with pytest.raises(ValueError, match="must have"):
            self._lock(secret=[1, 0])
