"""End-to-end tests of the DynUnlock attack (the paper's headline claim).

These tests lock real/synthetic circuits with EFF-Dyn and verify the
attack recovers the exact LFSR seed (or an equivalence class containing
it) through nothing but the obfuscated scan oracle and public structure.
"""

import random

import pytest

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.bench_suite.iscas import s27_netlist, s208_like_netlist
from repro.core.dynunlock import DynUnlockConfig, dynunlock
from repro.locking.effdyn import lock_with_effdyn
from repro.util.bitvec import random_bits


class TestDynUnlockOnS27:
    @pytest.mark.parametrize("lock_seed", range(6))
    @pytest.mark.requires_numpy
    def test_recovers_exact_seed(self, lock_seed):
        netlist = s27_netlist()
        lock = lock_with_effdyn(netlist, key_bits=2, rng=random.Random(lock_seed))
        result = dynunlock(netlist, lock.public_view(), lock.make_oracle())
        assert result.success
        assert result.recovered_seed == list(lock.seed)
        assert result.iterations >= 1

    @pytest.mark.requires_numpy
    def test_result_reports_paper_columns(self):
        netlist = s27_netlist()
        lock = lock_with_effdyn(netlist, key_bits=2, rng=random.Random(0))
        result = dynunlock(netlist, lock.public_view(), lock.make_oracle())
        assert result.n_seed_candidates >= 1
        assert result.runtime_s > 0
        assert result.oracle_queries > 0
        assert result.rounds and result.rounds[0].n_captures == 1


class TestDynUnlockOnSyntheticCircuits:
    @pytest.mark.parametrize("trial", range(4))
    @pytest.mark.requires_numpy
    def test_seed_recovery_across_geometries(self, trial):
        rng = random.Random(40 + trial)
        config = GeneratorConfig(
            n_flops=rng.randint(6, 14),
            n_inputs=rng.randint(2, 5),
            n_outputs=rng.randint(1, 4),
        )
        netlist = generate_circuit(config, rng, name=f"dyn{trial}")
        key_bits = rng.randint(3, min(8, netlist.n_dffs - 1))
        lock = lock_with_effdyn(netlist, key_bits=key_bits, rng=rng)
        result = dynunlock(netlist, lock.public_view(), lock.make_oracle())
        assert result.success
        # The true seed must be among the candidates the SAT attack kept.
        assert list(lock.seed) in result.seed_candidates
        # And the refined seed must descramble the oracle: re-verify on
        # fresh patterns through the model the attack produced.
        assert result.recovered_seed is not None

    @pytest.mark.requires_numpy
    def test_recovered_seed_grants_scan_access(self):
        """The attack's end goal: predict scrambled responses at will."""
        rng = random.Random(77)
        config = GeneratorConfig(n_flops=8, n_inputs=3, n_outputs=2)
        netlist = generate_circuit(config, rng, name="access")
        lock = lock_with_effdyn(netlist, key_bits=4, rng=rng)
        oracle = lock.make_oracle()
        result = dynunlock(netlist, lock.public_view(), oracle)
        assert result.success and result.model is not None

        from repro.sim.logicsim import CombinationalSimulator

        sim = CombinationalSimulator(result.model.netlist)
        check_rng = random.Random(123)
        for _ in range(10):
            pattern = random_bits(8, check_rng)
            pis = random_bits(3, check_rng)
            response = oracle.query(pattern, pis)
            inputs = dict(zip(result.model.a_inputs, pattern))
            inputs.update(zip(result.model.pi_inputs, pis))
            inputs.update(zip(result.model.key_inputs, result.recovered_seed))
            values = sim.run(inputs)
            assert [
                values[n] for n in result.model.b_outputs
            ] == response.scan_out

    @pytest.mark.requires_numpy
    def test_s208_like_fig1_attack(self):
        """The paper's demonstration circuit profile (8 flops, 3 key bits)."""
        from repro.locking.effdyn import EffDynLock
        from repro.scan.chain import ScanChainSpec

        netlist = s208_like_netlist()
        rng = random.Random(5)
        base = lock_with_effdyn(netlist, key_bits=3, rng=rng)
        lock = EffDynLock(
            netlist=netlist,
            spec=ScanChainSpec.from_paper_positions(8, [1, 2, 5]),
            lfsr_taps=base.lfsr_taps,
            seed=base.seed,
            secret_key=base.secret_key,
        )
        result = dynunlock(netlist, lock.public_view(), lock.make_oracle())
        assert result.success
        assert result.recovered_seed == list(lock.seed)


class TestDynUnlockConfigKnobs:
    @pytest.mark.requires_numpy
    def test_timeout_produces_graceful_nonconvergence(self):
        rng = random.Random(9)
        config = GeneratorConfig(n_flops=10, n_inputs=3, n_outputs=2)
        netlist = generate_circuit(config, rng, name="budget")
        lock = lock_with_effdyn(netlist, key_bits=5, rng=rng)
        result = dynunlock(
            netlist,
            lock.public_view(),
            lock.make_oracle(),
            DynUnlockConfig(timeout_s=0.0),
        )
        assert not result.success
        assert result.seed_candidates == []

    @pytest.mark.requires_numpy
    def test_pos_can_be_excluded(self):
        netlist = s27_netlist()
        lock = lock_with_effdyn(netlist, key_bits=2, rng=random.Random(0))
        result = dynunlock(
            netlist,
            lock.public_view(),
            lock.make_oracle(),
            DynUnlockConfig(include_pos=False),
        )
        assert result.success
        assert result.model.po_outputs == []
