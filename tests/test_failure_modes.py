"""Failure-injection tests: the attack must fail *safely* when its
assumptions are violated, and the library must reject inconsistent use.

These scenarios matter for a real attack tool: a reverse-engineering
mistake (wrong taps, wrong key-gate map) must surface as "no verified
seed", never as a silently wrong answer.
"""

import random

import pytest

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.core.dynunlock import DynUnlockConfig, dynunlock
from repro.locking.effdyn import EffDynPublicView, lock_with_effdyn
from repro.prng.polynomials import default_taps
from repro.scan.chain import ScanChainSpec


def make_lock(seed: int = 5, n_flops: int = 8, key_bits: int = 4):
    rng = random.Random(seed)
    config = GeneratorConfig(n_flops=n_flops, n_inputs=3, n_outputs=2)
    netlist = generate_circuit(config, rng, name=f"fm{seed}")
    lock = lock_with_effdyn(netlist, key_bits=key_bits, rng=rng)
    return netlist, lock


class TestWrongReverseEngineering:
    @pytest.mark.requires_numpy
    def test_wrong_taps_never_yield_verified_seed(self):
        """If the attacker mis-read the LFSR polynomial, refinement must
        reject every candidate (responses cannot be reproduced)."""
        netlist, lock = make_lock()
        true_taps = set(lock.lfsr_taps)
        wrong_taps = tuple(sorted({0, lock.key_bits - 1} ^ (
            true_taps if len(true_taps) > 2 else set()
        ))) or (0, lock.key_bits - 1)
        if set(wrong_taps) == true_taps:
            wrong_taps = tuple(sorted({1, lock.key_bits - 1}))
        assert set(wrong_taps) != true_taps
        wrong_view = EffDynPublicView(
            spec=lock.spec, lfsr_width=lock.key_bits, lfsr_taps=wrong_taps
        )
        result = dynunlock(
            netlist, wrong_view, lock.make_oracle(),
            DynUnlockConfig(timeout_s=120, max_captures=1),
        )
        # Either the constraints became contradictory (no candidates) or
        # replay verification killed all survivors.
        assert not result.success

    @pytest.mark.requires_numpy
    def test_wrong_keygate_positions_never_yield_verified_seed(self):
        netlist, lock = make_lock(seed=6)
        positions = list(lock.spec.keygate_positions)
        slots = [p for p in range(netlist.n_dffs - 1) if p not in positions]
        assert slots, "test circuit too small to displace a gate"
        displaced = sorted(positions[:-1] + [slots[0]])
        wrong_spec = ScanChainSpec(
            n_flops=netlist.n_dffs, keygate_positions=tuple(displaced)
        )
        assert wrong_spec != lock.spec
        wrong_view = EffDynPublicView(
            spec=wrong_spec,
            lfsr_width=lock.key_bits,
            lfsr_taps=lock.lfsr_taps,
        )
        result = dynunlock(
            netlist, wrong_view, lock.make_oracle(),
            DynUnlockConfig(timeout_s=120, max_captures=1),
        )
        assert not result.success

    @pytest.mark.requires_numpy
    def test_wrong_netlist_never_yields_verified_seed(self):
        """Attacking chip A with chip B's netlist must fail verification."""
        netlist_a, lock_a = make_lock(seed=7)
        rng = random.Random(8)
        config = GeneratorConfig(n_flops=netlist_a.n_dffs, n_inputs=3,
                                 n_outputs=2)
        netlist_b = generate_circuit(config, rng, name="other")
        result = dynunlock(
            netlist_b, lock_a.public_view(), lock_a.make_oracle(),
            DynUnlockConfig(timeout_s=120, max_captures=1),
        )
        assert not result.success


class TestApiMisuse:
    def test_oracle_rejects_bad_widths(self):
        netlist, lock = make_lock(seed=9)
        oracle = lock.make_oracle()
        with pytest.raises(ValueError):
            oracle.query([0] * (netlist.n_dffs + 1))
        with pytest.raises(ValueError):
            oracle.query([0] * netlist.n_dffs, [0])

    def test_public_view_width_must_cover_gates(self):
        netlist, lock = make_lock(seed=10)
        bad_view = EffDynPublicView(
            spec=lock.spec,
            lfsr_width=lock.spec.n_keygates - 1,
            lfsr_taps=default_taps(max(2, lock.spec.n_keygates - 1)),
        )
        with pytest.raises(ValueError):
            dynunlock(netlist, bad_view, lock.make_oracle())


class TestGracefulDegradation:
    @pytest.mark.requires_numpy
    def test_zero_candidate_limit_reports_exhaustion(self):
        netlist, lock = make_lock(seed=11)
        result = dynunlock(
            netlist, lock.public_view(), lock.make_oracle(),
            DynUnlockConfig(candidate_limit=1, max_captures=1,
                            timeout_s=120),
        )
        # With limit 1 the single enumerated candidate is either the real
        # equivalence class (success) or enumeration flagged exhaustion
        # and the restart loop ran out of rounds -- never a crash.
        assert result.n_seed_candidates <= 1 or result.success

    @pytest.mark.requires_numpy
    def test_all_patterns_consistent_after_success(self):
        netlist, lock = make_lock(seed=12)
        oracle = lock.make_oracle()
        result = dynunlock(netlist, lock.public_view(), oracle)
        assert result.success
        # Replaying the attack's own DIPs through the recovered model
        # must match (sanity on the result object itself).
        from repro.sim.logicsim import CombinationalSimulator

        sim = CombinationalSimulator(result.model.netlist)
        for dip, response in result.sat_result.dips:
            inputs = dict(zip(result.model.x_inputs, dip))
            inputs.update(
                zip(result.model.key_inputs, result.recovered_seed)
            )
            values = sim.run(inputs)
            predicted = [
                values[n] for n in result.model.observed_outputs
            ]
            assert predicted == response
