"""Tests for the multi-chain scan extension: spec, oracle, model, attack."""

import random

import pytest

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.core.multichain import (
    build_multichain_model,
    derive_multichain_crossings,
    dynunlock_multichain,
)
from repro.locking.eff import ConstantKeystream
from repro.prng.lfsr import FibonacciLfsr, Keystream
from repro.prng.polynomials import default_taps
from repro.scan.multichain import MultiChainScanOracle, MultiChainSpec
from repro.sim.logicsim import CombinationalSimulator
from repro.sim.seqsim import SequentialSimulator
from repro.util.bitvec import random_bits


def make_case(seed: int, n_flops: int = 9, n_chains: int = 3, n_gates: int = 4):
    rng = random.Random(seed)
    config = GeneratorConfig(n_flops=n_flops, n_inputs=3, n_outputs=2)
    netlist = generate_circuit(config, rng, name=f"mc{seed}")
    spec = MultiChainSpec.balanced(n_flops, n_chains)
    # Scatter key gates over all chains.
    sites = [
        (chain, position)
        for chain in range(spec.n_chains)
        for position in range(spec.chain_lengths[chain] - 1)
    ]
    keygates = tuple(sorted(rng.sample(sites, min(n_gates, len(sites)))))
    spec = MultiChainSpec(chain_lengths=spec.chain_lengths, keygates=keygates)
    width = max(2, spec.n_keygates)
    taps = default_taps(width)
    seed_bits = random_bits(width, rng)
    while not any(seed_bits):
        seed_bits = random_bits(width, rng)
    keystream = Keystream(
        FibonacciLfsr(width=width, seed_bits=seed_bits, taps=taps)
    )
    oracle = MultiChainScanOracle(netlist, spec, keystream)
    return netlist, spec, taps, width, seed_bits, oracle, rng


class TestMultiChainSpec:
    def test_balanced_split(self):
        spec = MultiChainSpec.balanced(10, 3)
        assert spec.chain_lengths == (4, 3, 3)
        assert spec.n_flops == 10
        assert spec.max_length == 4

    def test_flop_index_roundtrip(self):
        spec = MultiChainSpec.balanced(10, 3)
        for flop in range(10):
            chain, position = spec.chain_of(flop)
            assert spec.flop_index(chain, position) == flop

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            MultiChainSpec(chain_lengths=())
        with pytest.raises(ValueError):
            MultiChainSpec(chain_lengths=(3,), keygates=((0, 2),))
        with pytest.raises(ValueError):
            MultiChainSpec(chain_lengths=(3,), keygates=((1, 0),))
        with pytest.raises(ValueError):
            MultiChainSpec(chain_lengths=(3, 3), keygates=((0, 0), (0, 0)))
        with pytest.raises(ValueError):
            MultiChainSpec.balanced(4, 5)

    def test_gates_in_chain(self):
        spec = MultiChainSpec(
            chain_lengths=(4, 4), keygates=((1, 2), (0, 0), (1, 0))
        )
        assert spec.gates_in_chain(0) == [(1, 0)]
        assert spec.gates_in_chain(1) == [(2, 0), (0, 2)]


class TestMultiChainOracle:
    def test_transparent_with_zero_keys(self):
        """Zero keystream: load/capture/unload equals a plain step."""
        rng = random.Random(1)
        config = GeneratorConfig(n_flops=8, n_inputs=3, n_outputs=2)
        netlist = generate_circuit(config, rng, name="mcz")
        spec = MultiChainSpec.balanced(8, 3, keygates=((0, 0), (1, 1)))
        oracle = MultiChainScanOracle(netlist, spec, ConstantKeystream([0, 0]))
        for _ in range(6):
            pattern = random_bits(8, rng)
            pis = random_bits(3, rng)
            response = oracle.query(pattern, pis)
            sim = SequentialSimulator(netlist)
            sim.set_state_vector(pattern)
            values = sim.step(dict(zip(netlist.inputs, pis)))
            assert response.scan_out == sim.get_state_vector()
            assert response.primary_outputs == [
                values[n] for n in netlist.outputs
            ]

    def test_unequal_chain_lengths_transparent(self):
        rng = random.Random(2)
        config = GeneratorConfig(n_flops=7, n_inputs=2, n_outputs=2)
        netlist = generate_circuit(config, rng, name="mcu")
        spec = MultiChainSpec(chain_lengths=(4, 2, 1))
        oracle = MultiChainScanOracle(netlist, spec, ConstantKeystream([0]))
        pattern = random_bits(7, rng)
        response = oracle.query(pattern)
        sim = SequentialSimulator(netlist)
        sim.set_state_vector(pattern)
        sim.step({net: 0 for net in netlist.inputs})
        assert response.scan_out == sim.get_state_vector()

    def test_queries_repeatable(self):
        netlist, spec, taps, width, seed_bits, oracle, rng = make_case(3)
        pattern = random_bits(netlist.n_dffs, rng)
        assert oracle.query(pattern).scan_out == oracle.query(pattern).scan_out

    def test_scrambling_active(self):
        netlist, spec, taps, width, seed_bits, oracle, rng = make_case(4)
        diffs = 0
        for _ in range(6):
            pattern = random_bits(netlist.n_dffs, rng)
            locked = oracle.query(pattern).scan_out
            oracle.obfuscation_enabled = False
            clean = oracle.query(pattern).scan_out
            oracle.obfuscation_enabled = True
            diffs += locked != clean
        assert diffs > 0


class TestMultiChainModel:
    @pytest.mark.parametrize("trial", range(6))
    @pytest.mark.requires_numpy
    def test_model_matches_oracle(self, trial):
        netlist, spec, taps, width, seed_bits, oracle, rng = make_case(
            100 + trial,
            n_flops=rng_flops(trial),
            n_chains=2 + trial % 3,
        )
        model = build_multichain_model(netlist, spec, taps, width)
        sim = CombinationalSimulator(model.netlist)
        for _ in range(6):
            pattern = random_bits(netlist.n_dffs, rng)
            pis = random_bits(len(netlist.inputs), rng)
            response = oracle.query(pattern, pis)
            inputs = dict(zip(model.a_inputs, pattern))
            inputs.update(zip(model.pi_inputs, pis))
            inputs.update(zip(model.key_inputs, seed_bits))
            values = sim.run(inputs)
            assert [values[n] for n in model.b_outputs] == response.scan_out
            assert [
                values[n] for n in model.po_outputs
            ] == response.primary_outputs

    def test_single_chain_reduces_to_base_case(self):
        """A 1-chain MultiChainSpec must equal the single-chain crossings."""
        from repro.core.algorithm1 import (
            shift_in_crossings_closed_form,
            shift_out_crossings_closed_form,
        )
        from repro.scan.chain import ScanChainSpec

        single = ScanChainSpec(n_flops=6, keygate_positions=(0, 2, 4))
        multi = MultiChainSpec(
            chain_lengths=(6,), keygates=((0, 0), (0, 2), (0, 4))
        )
        mc_in, mc_out = derive_multichain_crossings(multi)
        assert mc_in == shift_in_crossings_closed_form(single)
        assert mc_out == shift_out_crossings_closed_form(single)


def rng_flops(trial: int) -> int:
    return 7 + (trial * 3) % 8


class TestMultiChainAttack:
    @pytest.mark.parametrize("trial", range(3))
    @pytest.mark.requires_numpy
    def test_seed_recovery(self, trial):
        netlist, spec, taps, width, seed_bits, oracle, rng = make_case(
            200 + trial, n_flops=10, n_chains=3, n_gates=5
        )
        result = dynunlock_multichain(
            netlist, spec, taps, width, oracle, timeout_s=300
        )
        assert result.success
        assert seed_bits in result.seed_candidates
