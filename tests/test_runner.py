"""Tests for the parallel experiment runner (spec, store, scheduler).

The guarantees pinned down here are the ones the CI pipeline leans on:
stable spec hashes, cache hit/miss/invalidate semantics across profile
and code-version changes, parallel-equals-serial row equality for the
real Table II path, resumability after a simulated interrupt, retry and
timeout handling, and the JSON/CSV artifact round-trip.
"""

import json

import pytest

from repro.reports.cells import CELL_RUNNERS
from repro.reports.experiments import run_table2, table2_specs
from repro.reports.profiles import (
    PROFILES,
    ExperimentProfile,
    profile_from_dict,
    profile_to_dict,
)
from repro.runner.artifacts import load_artifact, write_artifact
from repro.runner.scheduler import RunnerError, run_jobs
from repro.runner.spec import JobSpec, code_version
from repro.runner.store import ResultStore

QUICK = PROFILES["quick"]

TINY = ExperimentProfile(
    name="tiny",
    scale=64,
    key_bits=6,
    n_seeds=1,
    timeout_s=120.0,
    table3_key_sizes=(6,),
)


def spec_of(payload="x", **extra):
    return JobSpec.make("selfcheck", TINY, payload=payload, **extra)


class TestJobSpec:
    def test_hash_is_stable_across_instances(self):
        a = JobSpec.make("table2", QUICK, benchmark="s5378", seed_index=0)
        b = JobSpec.make("table2", QUICK, benchmark="s5378", seed_index=0)
        assert a.spec_hash == b.spec_hash
        assert a.canonical() == b.canonical()

    def test_hash_ignores_param_order(self):
        a = JobSpec("e", {"x": 1, "y": 2}, profile_to_dict(TINY))
        b = JobSpec("e", {"y": 2, "x": 1}, profile_to_dict(TINY))
        assert a.spec_hash == b.spec_hash

    def test_hash_changes_with_any_field(self):
        base = JobSpec.make("table2", QUICK, benchmark="s5378", seed_index=0)
        assert (
            base.spec_hash
            != JobSpec.make("table3", QUICK, benchmark="s5378", seed_index=0).spec_hash
        )
        assert (
            base.spec_hash
            != JobSpec.make("table2", QUICK, benchmark="s5378", seed_index=1).spec_hash
        )
        assert (
            base.spec_hash
            != JobSpec.make("table2", TINY, benchmark="s5378", seed_index=0).spec_hash
        )

    def test_profile_fields_all_participate(self):
        other = ExperimentProfile(
            name="tiny", scale=64, key_bits=6, n_seeds=1,
            timeout_s=60.0, table3_key_sizes=(6,),
        )
        assert (
            JobSpec.make("e", TINY, x=1).spec_hash
            != JobSpec.make("e", other, x=1).spec_hash
        )

    def test_round_trips_through_dict(self):
        spec = JobSpec.make("table2", QUICK, benchmark="s5378", seed_index=3)
        clone = JobSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash == spec.spec_hash

    def test_rejects_non_json_values(self):
        with pytest.raises(TypeError):
            JobSpec.make("e", TINY, bad=object())

    def test_profile_dict_round_trip(self):
        assert profile_from_dict(profile_to_dict(QUICK)) == QUICK

    def test_code_version_is_stable_hex(self):
        assert code_version() == code_version()
        int(code_version(), 16)


class TestResultStore:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = spec_of()
        assert store.get(spec) is None
        store.put(spec, {"value": 42}, duration_s=0.1)
        assert store.get(spec) == {"value": 42}
        assert len(store) == 1

    def test_profile_change_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(JobSpec.make("e", TINY, x=1), {"value": 1})
        assert store.get(JobSpec.make("e", QUICK, x=1)) is None

    def test_code_version_change_is_a_miss(self, tmp_path):
        old = ResultStore(tmp_path, version="a" * 20)
        old.put(spec_of(), {"value": 1})
        new = ResultStore(tmp_path, version="b" * 20)
        assert new.get(spec_of()) is None
        assert len(new) == 0

    def test_invalidate(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = spec_of()
        store.put(spec, {"value": 1})
        assert store.invalidate(spec)
        assert store.get(spec) is None
        assert not store.invalidate(spec)

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = spec_of()
        store.put(spec, {"value": 1})
        store.path_for(spec).write_text("{not json")
        assert store.get(spec) is None

    def test_non_dict_json_degrades_to_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = spec_of()
        store.put(spec, {"value": 1})
        store.path_for(spec).write_text("[1, 2]")
        assert store.get(spec) is None

    def test_tampered_spec_degrades_to_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = spec_of()
        store.put(spec, {"value": 1})
        entry = json.loads(store.path_for(spec).read_text())
        entry["spec"] = "something else"
        store.path_for(spec).write_text(json.dumps(entry))
        assert store.get(spec) is None

    def test_prune_drops_other_versions_only(self, tmp_path):
        old = ResultStore(tmp_path, version="a" * 20)
        old.put(spec_of(), {"value": 1})
        new = ResultStore(tmp_path, version="b" * 20)
        new.put(spec_of(), {"value": 2})
        assert new.prune() == 1
        assert new.get(spec_of()) == {"value": 2}
        assert old.get(spec_of()) is None


class TestResultStoreEdgeCases:
    """Degraded-input regressions: every failure mode must be a miss,
    never an exception -- an interrupted writer or a foreign cache tree
    must not take down the grid that trips over it."""

    def test_truncated_entry_degrades_to_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = spec_of()
        store.put(spec, {"value": 1})
        path = store.path_for(spec)
        intact = path.read_bytes()
        # Simulate a torn write: every strict prefix must read as a miss.
        for cut in (0, 1, len(intact) // 2, len(intact) - 1):
            path.write_bytes(intact[:cut])
            assert store.get(spec) is None, f"cut at {cut} bytes"
        path.write_bytes(intact)
        assert store.get(spec) == {"value": 1}

    def test_invalidate_of_a_never_stored_spec(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.invalidate(spec_of()) is False
        # Must not conjure directories as a side effect.
        assert not (tmp_path / store.version).exists()

    def test_prune_a_foreign_version_tree_with_nesting(self, tmp_path):
        mine = ResultStore(tmp_path, version="m" * 20)
        mine.put(spec_of(), {"value": 1})
        # A foreign version left behind by another checkout: nested
        # experiment directories, entries, and a stray non-JSON file.
        foreign = tmp_path / ("f" * 20)
        deep = foreign / "table2" / "extra"
        deep.mkdir(parents=True)
        (foreign / "table2" / "aa.json").write_text("{}")
        (deep / "bb.json").write_text("{}")
        (deep / "notes.txt").write_text("leftover")
        assert mine.prune() == 3
        assert not foreign.exists()
        assert mine.get(spec_of()) == {"value": 1}

    def test_prune_ignores_stray_files_in_the_root(self, tmp_path):
        store = ResultStore(tmp_path, version="m" * 20)
        store.put(spec_of(), {"value": 1})
        stray = tmp_path / "README.txt"
        stray.write_text("not a version directory")
        assert store.prune() == 0
        assert stray.exists()

    def test_prune_on_a_missing_root(self, tmp_path):
        store = ResultStore(tmp_path / "never-created")
        assert store.prune() == 0

    def test_len_on_a_missing_version_dir(self, tmp_path):
        assert len(ResultStore(tmp_path, version="x" * 20)) == 0


class TestScheduler:
    def test_serial_runs_and_stores(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [spec_of(payload=i) for i in range(3)]
        report = run_jobs(specs, jobs=1, store=store)
        assert report.n_computed == 3 and report.n_cached == 0
        assert [o.result["payload"] for o in report.outcomes] == [0, 1, 2]
        again = run_jobs(specs, jobs=1, store=store)
        assert again.n_cached == 3 and again.n_computed == 0

    def test_outcomes_preserve_spec_order_in_parallel(self):
        specs = [spec_of(payload=i) for i in range(6)]
        report = run_jobs(specs, jobs=2)
        assert [o.result["payload"] for o in report.outcomes] == list(range(6))

    def test_progress_sees_every_outcome(self):
        seen = []
        run_jobs([spec_of(payload=i) for i in range(3)], progress=seen.append)
        assert sorted(o.result["payload"] for o in seen) == [0, 1, 2]

    def test_retry_recovers_from_one_shot_failure(self, tmp_path):
        marker = tmp_path / "fail_once"
        spec = spec_of(fail_marker=str(marker))
        report = run_jobs([spec], jobs=1, retries=1)
        assert report.outcomes[0].ok
        assert report.outcomes[0].attempts == 2

    def test_exhausted_retries_record_the_error(self, tmp_path):
        bad = JobSpec.make("no-such-experiment", TINY)
        report = run_jobs([bad], jobs=1, retries=1)
        outcome = report.outcomes[0]
        assert not outcome.ok
        assert "no-such-experiment" in outcome.error
        with pytest.raises(RunnerError):
            report.raise_on_error()

    def test_parallel_timeout_kills_sleeping_job(self):
        slow = spec_of(duration_s=10.0)
        report = run_jobs([slow], jobs=2, timeout_s=0.3, retries=0)
        outcome = report.outcomes[0]
        assert not outcome.ok
        assert "JobTimeout" in outcome.error
        assert report.wall_s < 8.0

    def test_resume_after_interrupt(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [spec_of(payload=i) for i in range(4)]
        # Simulated interrupt: only half the grid finished last time.
        run_jobs(specs[:2], jobs=1, store=store)
        report = run_jobs(specs, jobs=1, store=store)
        assert [o.cached for o in report.outcomes] == [True, True, False, False]
        assert report.results == [o.result for o in report.outcomes]

    def test_selfcheck_is_a_registered_cell(self):
        assert "selfcheck" in CELL_RUNNERS


class TestTable2ThroughRunner:
    """The acceptance path: real table2 cells through the scheduler."""

    BENCH = ["s5378"]

    @staticmethod
    def _key(row):
        # Everything except the wall-clock column, which is measured.
        return (
            row.benchmark,
            row.n_scan_flops,
            row.key_bits,
            row.n_seed_candidates,
            row.n_iterations,
            row.success_rate,
            row.exact_seed_rate,
        )

    @pytest.mark.requires_numpy
    def test_parallel_rows_equal_serial_rows(self):
        serial = run_table2(QUICK, self.BENCH, jobs=1)
        parallel = run_table2(QUICK, self.BENCH, jobs=2)
        assert [self._key(r) for r in serial] == [self._key(r) for r in parallel]

    @pytest.mark.requires_numpy
    def test_cached_rerun_is_identical_including_times(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_table2(QUICK, self.BENCH, store=store)
        events = []
        second = run_table2(QUICK, self.BENCH, store=store, progress=events.append)
        assert first == second  # byte-identical rows, time column included
        assert events and all("[cached]" in e for e in events)

    @pytest.mark.requires_numpy
    def test_profile_change_misses_the_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        run_table2(QUICK, self.BENCH, store=store)
        specs = table2_specs(TINY, self.BENCH)
        assert all(store.get(s) is None for s in specs)


class TestArtifacts:
    HEADERS = ["Benchmark", "Time (s)"]
    ROWS = [["s5378", 1.25], ["b17", 2.5]]

    def test_json_and_csv_round_trip(self, tmp_path):
        path = write_artifact(
            tmp_path, "table2", self.HEADERS, self.ROWS,
            title="Table II (test)", profile="quick",
            meta={"total_attack_time_s": 3.75},
        )
        assert path.name == "BENCH_table2.json"
        data = load_artifact(path)
        assert data["headers"] == self.HEADERS
        assert data["rows"] == self.ROWS
        assert data["meta"]["total_attack_time_s"] == 3.75
        csv_lines = (tmp_path / "BENCH_table2.csv").read_text().splitlines()
        assert csv_lines[0] == "Benchmark,Time (s)"
        assert len(csv_lines) == 3

    def test_render_artifact(self, tmp_path):
        from repro.reports.tables import render_artifact

        path = write_artifact(
            tmp_path, "table2", self.HEADERS, self.ROWS, title="T2"
        )
        text = render_artifact(path)
        assert text.splitlines()[0] == "T2"
        assert "s5378" in text and "Benchmark" in text

    def test_load_rejects_foreign_json(self, tmp_path):
        bad = tmp_path / "BENCH_x.json"
        bad.write_text('{"rows": []}')
        with pytest.raises(ValueError):
            load_artifact(bad)
