"""Tests for the CNF container and DIMACS I/O."""

import pytest

from repro.sat.cnf import Cnf, is_negative, lit_of, var_of


class TestLiterals:
    def test_lit_of(self):
        assert lit_of(3) == 3
        assert lit_of(3, positive=False) == -3

    def test_lit_of_rejects_nonpositive_var(self):
        with pytest.raises(ValueError):
            lit_of(0)

    def test_var_of(self):
        assert var_of(-7) == 7
        assert var_of(7) == 7

    def test_var_of_zero(self):
        with pytest.raises(ValueError):
            var_of(0)

    def test_is_negative(self):
        assert is_negative(-1)
        assert not is_negative(1)


class TestCnf:
    def test_new_var_counts_up(self):
        cnf = Cnf()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.new_vars(3) == [3, 4, 5]

    def test_add_clause_extends_var_count(self):
        cnf = Cnf()
        cnf.add_clause([1, -9])
        assert cnf.n_vars == 9
        assert cnf.n_clauses == 1

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Cnf().add_clause([1, 0])

    def test_extend(self):
        a = Cnf()
        a.add_clause([1, 2])
        b = Cnf()
        b.add_clause([-3])
        a.extend(b)
        assert a.n_clauses == 2
        assert a.n_vars == 3

    def test_evaluate(self):
        cnf = Cnf()
        cnf.add_clause([1, -2])
        cnf.add_clause([2, 3])
        assert cnf.evaluate([0, 1, 0, 1])  # x1=1 sat c1; x3=1 sat c2
        assert not cnf.evaluate([0, 0, 1, 0])  # c1 fails (x1=0, x2=1)

    def test_dimacs_roundtrip(self):
        cnf = Cnf()
        cnf.add_clause([1, -2, 3])
        cnf.add_clause([-1])
        text = cnf.to_dimacs()
        parsed = Cnf.from_dimacs(text)
        assert parsed.n_vars == cnf.n_vars
        assert parsed.clauses == cnf.clauses

    def test_dimacs_ignores_comments(self):
        parsed = Cnf.from_dimacs("c a comment\np cnf 3 1\n1 -3 0\n")
        assert parsed.n_vars == 3
        assert parsed.clauses == [(1, -3)]

    def test_dimacs_bad_header(self):
        with pytest.raises(ValueError):
            Cnf.from_dimacs("p sat 3 1\n1 0\n")

    def test_save_load(self, tmp_path):
        cnf = Cnf()
        cnf.add_clause([2, -1])
        path = tmp_path / "f.cnf"
        cnf.save(path)
        assert Cnf.load(path).clauses == cnf.clauses
