"""Regenerates the paper's Table II: DynUnlock on all ten benchmarks.

Paper (quoted for comparison; 128-bit keys, full-size circuits, averaged
over 10 LFSR seeds, lingeling on a 24-core Xeon):

    Benchmark  #flops  #key  #seed cand.  #iter  time(s)
    s5378         160   128           16     17       41
    s13207        202   128          128      4       27
    s15850        442   128            2      4       89
    s38584      1,233   128            1      3      219
    s38417      1,564   128            1      7      342
    s35932      1,728   128            1      1      254
    b20           429   128            1      1       63
    b21           429   128            1      1       54
    b22           611   128            1      1       99
    b17           864   128            1      1       86

This bench runs the same experiment at the active profile's scale (see
EXPERIMENTS.md for the recorded shape comparison): every circuit must be
broken, small circuits may leave several (power-of-two) candidates, and
the large circuits resolve a unique seed.
"""

import pytest

from repro.bench_suite.registry import TABLE2_BENCHMARKS
from repro.reports.experiments import TABLE2_HEADERS, run_table2_row
from repro.reports.tables import render_table


@pytest.mark.parametrize("name", TABLE2_BENCHMARKS)
def test_table2_row(benchmark, profile, jobs, name):
    row = benchmark.pedantic(
        run_table2_row,
        args=(name, profile),
        kwargs={"jobs": jobs},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {
            "benchmark": row.benchmark,
            "n_scan_flops": row.n_scan_flops,
            "key_bits": row.key_bits,
            "seed_candidates": row.n_seed_candidates,
            "iterations": row.n_iterations,
            "attack_time_s": row.time_s,
            "success_rate": row.success_rate,
            "exact_seed_rate": row.exact_seed_rate,
        }
    )
    print("\n" + render_table(TABLE2_HEADERS, [row.as_cells()],
                              title=f"Table II row ({profile.name} profile)"))
    # Headline claim: every benchmark is broken.
    assert row.success_rate == 1.0
    # Candidate sets are tiny (paper: <= 128 out of 2^128).
    assert row.n_seed_candidates <= profile.candidate_limit
