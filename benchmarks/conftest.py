"""Shared bench configuration.

Profiles: set ``REPRO_PROFILE=quick|full|paper`` (default quick).  Every
bench prints the paper-style row(s) it regenerates; run with ``-s`` to
see them inline, and see EXPERIMENTS.md for the recorded comparison
against the paper's numbers.

Everything in this directory is auto-marked ``slow``: the paper-table
regenerations take minutes even at the quick profile, so the default
test invocation (``-m "not slow"``, see pyproject.toml) skips them.
Run them with ``make bench`` or ``pytest benchmarks -m slow``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.reports.profiles import active_profile

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Tag every test in this directory ``slow`` so tier-1 skips them."""
    for item in items:
        if _BENCH_DIR in Path(item.fspath).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def profile():
    prof = active_profile()
    print(f"\n[repro] experiment profile: {prof.name} "
          f"(scale=1/{prof.scale}, key_bits={prof.key_bits}, "
          f"seeds={prof.n_seeds})")
    return prof
