"""Shared bench configuration.

Profiles: set ``REPRO_PROFILE=quick|full|paper`` (default quick).  Every
bench prints the paper-style row(s) it regenerates; run with ``-s`` to
see them inline, and see EXPERIMENTS.md for the recorded comparison
against the paper's numbers.

Parallelism: set ``REPRO_JOBS=N`` to fan each bench's experiment grid
across N worker processes via :mod:`repro.runner` (default 1 = serial,
0 = one per CPU core).  The benches never pass a result store -- they
measure real attack time, and a cache would turn them into no-ops.

Everything in this directory is auto-marked ``slow``: the paper-table
regenerations take minutes even at the quick profile, so the default
test invocation (``-m "not slow"``, see pyproject.toml) skips them.
Run them with ``make bench`` or ``pytest benchmarks -m slow``.  To stop
that default from silently deselecting an explicitly requested bench
run (``pytest benchmarks`` collecting 0 tests), this conftest turns the
"everything you asked for was deselected" case into a hard usage error
with the right invocation in the message.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.reports.profiles import active_profile

_BENCH_DIR = Path(__file__).resolve().parent
_N_BENCH_COLLECTED = 0


def _is_bench_item(item) -> bool:
    return _BENCH_DIR in Path(item.fspath).parents


def pytest_collection_modifyitems(items):
    """Tag every test in this directory ``slow`` so tier-1 skips them."""
    global _N_BENCH_COLLECTED
    _N_BENCH_COLLECTED = 0
    for item in items:
        if _is_bench_item(item):
            item.add_marker(pytest.mark.slow)
            _N_BENCH_COLLECTED += 1


def pytest_collection_finish(session):
    """Fail loudly if an explicit bench invocation deselected everything.

    ``pytest benchmarks`` under the default ``-m "not slow"`` addopts
    would otherwise exit green having run nothing at all.  Only the
    default marker filter triggers the error: a user-supplied ``-m``,
    ``-k``, or ``--collect-only`` deselecting the benches is presumed
    deliberate.
    """
    config = session.config
    # Only the path arguments the user actually typed count, and ALL of
    # them must target this directory -- `pytest tests benchmarks` still
    # has tests/ work to do and must not be aborted.
    path_args = [
        os.path.abspath(str(arg).split("::")[0])
        for arg in config.invocation_params.args
        if not str(arg).startswith("-")
        and os.path.exists(str(arg).split("::")[0])
    ]
    explicit = bool(path_args) and all(
        str(_BENCH_DIR) in arg for arg in path_args
    )
    default_filter_only = (
        config.getoption("-m") == "not slow"
        and not config.getoption("-k")
        and not config.getoption("--collect-only")
    )
    if not explicit or not default_filter_only or _N_BENCH_COLLECTED == 0:
        return
    if not any(_is_bench_item(item) for item in session.items):
        raise pytest.UsageError(
            "all benchmarks were deselected by the default '-m \"not slow\"' "
            "filter; run them with 'make bench' or "
            "'pytest benchmarks -m slow'"
        )


@pytest.fixture(scope="session")
def profile():
    """The active experiment profile, announced once per session."""
    prof = active_profile()
    print(f"\n[repro] experiment profile: {prof.name} "
          f"(scale=1/{prof.scale}, key_bits={prof.key_bits}, "
          f"seeds={prof.n_seeds})")
    return prof


@pytest.fixture(scope="session")
def jobs():
    """Worker-process count from ``REPRO_JOBS`` (default 1, 0 = n cores)."""
    n = int(os.environ.get("REPRO_JOBS", "1") or "1")
    return max(1, os.cpu_count() or 1) if n == 0 else max(1, n)
