"""Shared bench configuration.

Profiles: set ``REPRO_PROFILE=quick|full|paper`` (default quick).  Every
bench prints the paper-style row(s) it regenerates; run with ``-s`` to
see them inline, and see EXPERIMENTS.md for the recorded comparison
against the paper's numbers.
"""

from __future__ import annotations

import pytest

from repro.reports.profiles import active_profile


@pytest.fixture(scope="session")
def profile():
    prof = active_profile()
    print(f"\n[repro] experiment profile: {prof.name} "
          f"(scale=1/{prof.scale}, key_bits={prof.key_bits}, "
          f"seeds={prof.n_seeds})")
    return prof
