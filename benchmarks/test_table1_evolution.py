"""Regenerates the paper's Table I: each scan-locking defense falls to
its published attack.

    Defense   Obfuscation  Attack            (paper)
    EFF       static       ScanSAT
    DFS       static       shift-and-leak
    DOS       dynamic      ScanSAT (dyn)
    EFF-Dyn   dynamic      DynUnlock (this work)

The bench locks one registry circuit four ways and requires every attack
to succeed.
"""

from repro.reports.experiments import TABLE1_HEADERS, run_table1
from repro.reports.tables import render_table


def test_table1_every_defense_is_broken(benchmark, profile, jobs):
    rows = benchmark.pedantic(
        run_table1,
        args=(profile,),
        kwargs={"jobs": jobs},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_table(
        TABLE1_HEADERS,
        [row.as_cells() for row in rows],
        title=f"Table I ({profile.name} profile)",
    ))
    assert len(rows) == 4
    for row in rows:
        assert row.broken, f"{row.defense} resisted {row.attack}"
    benchmark.extra_info["defenses_broken"] = len(rows)
