"""The optimizer's two contract claims, measured at bench scale.

1. **Semantics**: on *every* registry benchmark, DynUnlock recovers a
   byte-identical seed with and without :mod:`repro.opt` preprocessing
   (at every level) -- the optimization is invisible to the attack's
   output, only to its cost.
2. **Cost**: across the full quick Table II grid, the optimized
   pipeline's total attack wall-clock does not exceed the raw one by
   more than 10% (the same budget the CI opt gate enforces), and every
   attack model shrinks.

Run with ``make bench`` or ``pytest benchmarks -m slow``.
"""

from __future__ import annotations

from repro.bench_suite.registry import PAPER_BENCHMARKS
from repro.core.dynunlock import DynUnlockConfig, dynunlock
from repro.core.modeling import build_combinational_model
from repro.opt import MAX_LEVEL, optimize
from repro.reports.cells import build_table2_lock
from repro.reports.tables import render_table


def test_recovered_seed_identical_across_opt_levels_on_every_benchmark(
    benchmark, profile
):
    """Acceptance pin: keys are byte-identical with and without opt."""

    def sweep():
        rows = []
        for name in PAPER_BENCHMARKS:
            netlist, lock, _ = build_table2_lock(profile, name)
            outcomes = {}
            for level in range(0, MAX_LEVEL + 1):
                result = dynunlock(
                    netlist,
                    lock.public_view(),
                    lock.make_oracle(),
                    DynUnlockConfig(
                        timeout_s=profile.timeout_s,
                        candidate_limit=profile.candidate_limit,
                        opt_level=level,
                    ),
                )
                outcomes[level] = (
                    result.success,
                    result.recovered_seed,
                    result.n_seed_candidates,
                )
            rows.append((name, outcomes))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = []
    for name, outcomes in rows:
        success, seed, candidates = outcomes[0]
        assert success, f"{name}: baseline attack failed"
        for level in range(1, MAX_LEVEL + 1):
            assert outcomes[level] == outcomes[0], (
                f"{name}: level {level} changed the attack outcome "
                f"({outcomes[level]} != {outcomes[0]})"
            )
        table.append([name, candidates, "".join("=" for _ in outcomes)])
    print("\n" + render_table(
        ["Benchmark", "Candidates", "Levels agree"],
        table,
        title=f"Opt-level key identity ({profile.name} profile)",
    ))
    benchmark.extra_info["benchmarks_checked"] = len(rows)


def test_every_attack_model_shrinks(profile):
    """Level-1 optimization reduces every registry attack model."""
    reductions = {}
    for name in PAPER_BENCHMARKS:
        netlist, lock, key_bits = build_table2_lock(profile, name)
        model = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, key_bits
        )
        stats = optimize(model.netlist, level=1).stats
        reductions[name] = stats.reduction
        assert stats.gates_after < stats.gates_before, name
    print("\n" + render_table(
        ["Benchmark", "Reduction"],
        [[name, f"{r:.0%}"] for name, r in reductions.items()],
        title="Attack-model gate reduction (level 1)",
    ))
    assert min(reductions.values()) > 0.05
