"""Micro-benchmarks of the attack's building blocks (Figs. 3/4 pipeline).

These quantify where DynUnlock spends its time and back the DESIGN.md
ablation notes: dense vs unrolled overlay encodings, model construction,
oracle query throughput, Tseitin encoding, and raw solver throughput.
"""

import random

import pytest

from repro.bench_suite.registry import build_benchmark_netlist
from repro.core.modeling import build_combinational_model
from repro.locking.effdyn import lock_with_effdyn
from repro.sat.solver import CdclSolver
from repro.sat.tseitin import CircuitEncoder
from repro.util.bitvec import random_bits

BENCH = "s15850"
SCALE = 16
KEY_BITS = 12


@pytest.fixture(scope="module")
def locked_case():
    netlist = build_benchmark_netlist(BENCH, scale=SCALE)
    lock = lock_with_effdyn(netlist, key_bits=KEY_BITS, rng=random.Random(1))
    return netlist, lock


def test_model_build_dense(benchmark, locked_case):
    netlist, lock = locked_case
    model = benchmark(
        build_combinational_model,
        netlist, lock.spec, lock.lfsr_taps, lock.key_bits,
    )
    benchmark.extra_info["model_gates"] = model.netlist.n_gates


def test_model_build_unrolled(benchmark, locked_case):
    netlist, lock = locked_case
    model = benchmark(
        build_combinational_model,
        netlist, lock.spec, lock.lfsr_taps, lock.key_bits,
        "dynamic", 1, True, "unrolled",
    )
    benchmark.extra_info["model_gates"] = model.netlist.n_gates


def test_oracle_query_throughput(benchmark, locked_case):
    netlist, lock = locked_case
    oracle = lock.make_oracle()
    rng = random.Random(2)
    pattern = random_bits(netlist.n_dffs, rng)
    pis = random_bits(len(netlist.inputs), rng)
    benchmark(oracle.query, pattern, pis)


def test_tseitin_encoding(benchmark, locked_case):
    netlist, lock = locked_case
    model = build_combinational_model(
        netlist, lock.spec, lock.lfsr_taps, lock.key_bits
    )

    def encode():
        encoder = CircuitEncoder()
        encoder.encode_netlist(model.netlist)
        return encoder.cnf

    cnf = benchmark(encode)
    benchmark.extra_info["clauses"] = cnf.n_clauses


def _pigeonhole_cnf(holes: int):
    from repro.sat.cnf import Cnf

    pigeons = holes + 1
    cnf = Cnf()
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[(p, h)] = cnf.new_var()
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


def test_solver_throughput_pigeonhole(benchmark):
    """Raw CDCL speed on a classic UNSAT family (PHP 6 into 5)."""
    cnf = _pigeonhole_cnf(5)

    def solve():
        result = CdclSolver(cnf).solve()
        assert result.satisfiable is False
        return result

    benchmark(solve)


def test_dense_vs_unrolled_solve_ablation(benchmark, locked_case):
    """DESIGN.md ablation: the dense overlay encoding solves the first
    miter call faster than the paper-literal unrolled encoding."""
    netlist, lock = locked_case
    oracle = lock.make_oracle()

    def first_dip(encoding: str) -> float:
        from repro.attack.satattack import SatAttack, SatAttackConfig
        import time

        model = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, lock.key_bits,
            encoding=encoding,
        )
        n_a = len(model.a_inputs)

        def ofn(x):
            r = oracle.query(x[:n_a], x[n_a:])
            return list(r.scan_out) + list(r.primary_outputs)

        attack = SatAttack(model.netlist, model.key_inputs, ofn,
                           SatAttackConfig(max_iterations=1))
        t0 = time.perf_counter()
        attack.run()
        return time.perf_counter() - t0

    def compare():
        return {"dense": first_dip("dense"), "unrolled": first_dip("unrolled")}

    times = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info.update(times)
    print(f"\nfirst-DIP wall clock: dense={times['dense']:.2f}s "
          f"unrolled={times['unrolled']:.2f}s")
