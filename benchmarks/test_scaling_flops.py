"""Regenerates the Section IV scalability claim.

"Intuitively, in a larger circuit with a larger number of scan flops,
attack success should be higher as the seed bits will repeat for a larger
number of times."  -- i.e. for a fixed key width, growing the chain gives
the SAT attack more (linear) observations per DIP, so the surviving seed
space shrinks to a single candidate while execution time grows.
"""

from repro.reports.experiments import SCALING_HEADERS, run_flop_scaling
from repro.reports.tables import render_table

FLOP_COUNTS = (13, 16, 24, 48)
KEY_BITS = 12  # near chain length at the small end, like the paper's ratio


def test_candidates_shrink_as_flops_grow(benchmark, profile, jobs):
    rows = benchmark.pedantic(
        run_flop_scaling,
        args=(profile,),
        kwargs={
            "flop_counts": FLOP_COUNTS,
            "key_bits": KEY_BITS,
            "n_seeds": 3,
            "jobs": jobs,
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + render_table(
        SCALING_HEADERS,
        [row.as_cells() for row in rows],
        title=f"Flop-count scaling at fixed {KEY_BITS}-bit key "
              f"({profile.name} profile)",
    ))
    benchmark.extra_info["rows"] = [
        {"n_flops": r.n_flops, "candidates": r.n_seed_candidates}
        for r in rows
    ]
    # Shape assertions (averaged over seeds, so tolerate noise in the
    # middle): the smallest circuits leave at least as many candidates as
    # the largest, and large circuits resolve a unique seed -- Section
    # IV's "attack success should be higher [for more scan flops]".
    candidate_series = [row.n_seed_candidates for row in rows]
    assert candidate_series[0] >= candidate_series[-1]
    assert candidate_series[-1] == 1.0
