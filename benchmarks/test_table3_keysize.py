"""Regenerates the paper's Table III: key-size scaling on the three
largest circuits (s38584, s38417, s35932).

Paper shape (144..368-bit keys, full-size circuits): the attack keeps
succeeding as keys grow; seed-candidate counts stay 1 for s35932, grow to
at most 16 for s38417/s38584 at the largest keys; execution time grows
with key size (max < 23 hours on their machine for 336-bit s38417).

At the bench profile's scale the sweep uses proportionally smaller keys;
the assertions capture the same shape: success everywhere, candidate
counts bounded and non-decreasing in tendency, time growing with key
size (checked in EXPERIMENTS.md rather than asserted, since wall-clock
monotonicity is noisy at laptop scale).
"""

import pytest

from repro.bench_suite.registry import TABLE3_BENCHMARKS
from repro.reports.experiments import TABLE3_HEADERS, run_table3
from repro.reports.tables import render_table


@pytest.mark.parametrize("name", TABLE3_BENCHMARKS)
def test_table3_sweep(benchmark, profile, jobs, name):
    # One runner grid per circuit: the whole key-size sweep fans out
    # across REPRO_JOBS workers instead of looping cell by cell.
    rows = benchmark.pedantic(
        lambda: run_table3(profile, benchmarks=[name], jobs=jobs),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_table(
        TABLE3_HEADERS,
        [row.as_cells() for row in rows],
        title=f"Table III ({name}, {profile.name} profile)",
    ))
    benchmark.extra_info["rows"] = [
        {
            "key_bits": row.key_bits,
            "seed_candidates": row.n_seed_candidates,
            "iterations": row.n_iterations,
            "time_s": row.time_s,
        }
        for row in rows
    ]
    for row in rows:
        assert row.success_rate == 1.0, f"{name} failed at {row.key_bits} bits"
        assert row.n_seed_candidates <= profile.candidate_limit
