"""Regenerates the Section V discussion as an ablation.

"The only defenses that our attack cannot circumvent are those that
incorporate cryptographic functions or PUF structures to generate
dynamic keys.  Our attack cannot model such modules into their
combinational logic equivalent."

The ablation swaps the LFSR for a nonlinear filter PRNG with an identical
interface: the linear seed model then mispredicts the oracle, and the
attack's refinement step correctly rejects every candidate -- the attack
fails *safely* (it knows it failed), exactly as the paper concedes.
"""

from repro.reports.experiments import ABLATION_HEADERS, run_nonlinear_ablation
from repro.reports.tables import render_table


def test_nonlinear_prng_defeats_linear_modeling(benchmark, profile, jobs):
    rows = benchmark.pedantic(
        run_nonlinear_ablation,
        args=(profile,),
        kwargs={"jobs": jobs},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_table(
        ABLATION_HEADERS,
        [row.as_cells() for row in rows],
        title=f"PRNG ablation ({profile.name} profile)",
    ))
    by_name = {row.prng: row for row in rows}
    lfsr = by_name["lfsr"]
    nonlinear = by_name["nonlinear-filter"]
    assert lfsr.modeled_correctly and lfsr.attack_success
    assert not nonlinear.modeled_correctly
    assert not nonlinear.attack_success
    benchmark.extra_info["lfsr_broken"] = lfsr.attack_success
    benchmark.extra_info["nonlinear_broken"] = nonlinear.attack_success
