"""Regenerates the attack x defense resilience grid end to end.

The machine-checked version of the paper's Table I landscape: every
applicable (attack, defense) pairing from the plugin registry runs on
the two smallest registry benchmarks, and each pairing the paper claims
broken must measure ``broken`` with a key verified against the oracle.
The two defenses beyond the paper (SARLock-style point function, keyed
chain scrambling) ride along with measured verdicts.
"""

from repro.matrix.grid import (
    MATRIX_HEADERS,
    PAPER_EXPECTATIONS,
    check_against_paper,
    run_matrix,
)
from repro.reports.tables import render_table


def test_matrix_paper_pairs_all_broken(benchmark, profile, jobs):
    rows, _report = benchmark.pedantic(
        run_matrix,
        args=(profile,),
        kwargs={"jobs": jobs},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_table(
        MATRIX_HEADERS,
        [row.as_cells() for row in rows],
        title=f"Attack x defense resilience matrix ({profile.name} profile)",
    ))
    mismatches = check_against_paper(rows)
    assert not mismatches, "; ".join(mismatches)
    measured = [r for r in rows if r.applicable]
    assert len(measured) >= len(PAPER_EXPECTATIONS) + 2, (
        "the grid must measure the paper pairs plus the new defenses"
    )
    new_rows = [r for r in measured if r.defense in ("sarlock", "scramble")]
    assert new_rows, "the beyond-paper defenses must appear in the grid"
    for row in new_rows:
        assert row.verdict in ("broken", "resilient", "partial")
    benchmark.extra_info["pairs_measured"] = len(measured)
    benchmark.extra_info["paper_pairs_checked"] = len(PAPER_EXPECTATIONS)
