# Convenience wrappers around the test, bench, and lint suites.
#
#   make verify           - tier-1 verification: tests/ + benchmarks/ minus `slow`
#   make bench            - the slow paper-table regenerations (quick profile)
#   make test-all         - everything, slow included
#   make coverage         - tier-1 under pytest-cov, gated on the checked-in
#                           floor (benchmarks/baselines/coverage_floor.txt);
#                           requires pytest-cov
#   make matrix           - the attack x defense resilience grid (quick)
#   make fuzz             - a seeded differential-fuzzing campaign (quick);
#                           fails on any invariant violation and writes
#                           shrunk repro cases to .fuzz_corpus
#                           (FUZZ_TRIALS / FUZZ_SEED override the defaults)
#   make farm             - budgeted rounds of the continuous fuzz farm
#                           (examples/configs/quick-smoke.toml): coverage
#                           scheduling + deduplicating corpus under
#                           .repro_farm; resumes from its checkpoint, so
#                           repeated invocations keep exploring
#                           (FARM_CONFIG overrides the profile)
#   make opt-bench        - optimized vs raw attack pipeline on the quick
#                           Table II grid (cache-less, both arms); writes
#                           BENCH_opt.json to $(OPT_BENCH_DIR) and fails
#                           when optimization slows the total attack time
#                           by >10% or changes any attack outcome
#   make store-bench      - head-to-head result-store benchmark (json vs
#                           sharded vs sqlite backends); writes
#                           BENCH_store.json to $(STORE_BENCH_DIR) and
#                           fails when the default json backend's
#                           put+get path regresses >25% against
#                           benchmarks/baselines/store_quick.json
#   make ir-bench         - pure vs array-IR kernel benchmark on the quick
#                           Table II locked models (both arms through the
#                           same entry points, plus full-attack identity
#                           at opt levels 0/1/2); writes BENCH_ir.json to
#                           $(IR_BENCH_DIR), fails when the array arm is
#                           not >=1.15x faster or any outcome differs,
#                           and diffs array_total_s against
#                           benchmarks/baselines/ir_quick.json
#   make refresh-baseline - regenerate the Table II timing baseline from a
#                           clean (cache-less) quick run and install it at
#                           benchmarks/baselines/table2_quick.json; review
#                           the diff and commit it to bless the new budget
#   make refresh-store-baseline - same blessing dance for the store bench
#                           baseline (benchmarks/baselines/store_quick.json)
#   make refresh-ir-baseline - and for the IR kernel bench baseline
#                           (benchmarks/baselines/ir_quick.json)
#   make service-smoke    - end-to-end attack-as-a-service check: boots a
#                           ReproService on a free port, drives a small
#                           grid through the batching client twice, and
#                           fails unless the second pass fully dedupes
#                           and the results are byte-identical to the
#                           in-process repro.api path; the server's
#                           metrics.prom lands in $(SERVICE_SMOKE_DIR)
#   make docs             - regenerate docs/cli.md from the live argparse
#                           tree (scripts/gen_cli_docs.py); CI's docs-drift
#                           job fails when the committed file differs
#   make lint             - ruff check (whole repo) + ruff format --check (runner)
#
# REPRO_PROFILE=quick|full|paper scales the bench instances (default quick).
# REPRO_JOBS=N fans each bench's experiment grid across N worker
# processes through repro.runner (default 1; 0 = one per CPU core).

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest
RUFF ?= ruff
COVERAGE_FLOOR = benchmarks/baselines/coverage_floor.txt
BASELINE_DIR = .bench_refresh
OPT_BENCH_DIR ?= results
STORE_BENCH_DIR ?= results
STORE_BASELINE = benchmarks/baselines/store_quick.json
IR_BENCH_DIR ?= results
IR_BASELINE = benchmarks/baselines/ir_quick.json
SERVICE_SMOKE_DIR ?= .service_smoke

.PHONY: verify bench test-all coverage matrix fuzz farm opt-bench \
  store-bench ir-bench service-smoke refresh-baseline \
  refresh-store-baseline refresh-ir-baseline docs lint

verify:
	$(PYTEST) -x -q

# The trailing `-m slow` overrides the default `-m "not slow"` addopts;
# benchmarks/conftest.py errors out loudly if the filter ever ends up
# deselecting every bench, so this target can't silently run nothing.
bench:
	$(PYTEST) benchmarks -m slow -q -s

test-all:
	$(PYTEST) -m "slow or not slow" -q

coverage:
	$(PYTEST) -q --cov=repro --cov-report=term-missing \
	  --cov-fail-under="$$(cat $(COVERAGE_FLOOR))"

matrix:
	PYTHONPATH=src $(PYTHON) -m repro.cli matrix --profile quick \
	  --jobs $${REPRO_JOBS:-1}

fuzz:
	PYTHONPATH=src $(PYTHON) -m repro.cli fuzz --profile quick \
	  --trials $${FUZZ_TRIALS:-100} --seed $${FUZZ_SEED:-0} \
	  --jobs $${REPRO_JOBS:-1} --corpus .fuzz_corpus

# Checkpointed: a second `make farm` resumes the same state dir and
# keeps exploring where the first stopped (delete .repro_farm to reset).
farm:
	PYTHONPATH=src $(PYTHON) -m repro.cli farm run \
	  --config $${FARM_CONFIG:-examples/configs/quick-smoke.toml} \
	  --jobs $${REPRO_JOBS:-1}

opt-bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli opt-bench --profile quick \
	  --jobs $${REPRO_JOBS:-1} --emit-json $(OPT_BENCH_DIR)

# Same workload as the checked-in baseline (1500 entries x 1 KiB), so
# the default_total_s comparison is apples-to-apples.
store-bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli store-bench \
	  --emit-json $(STORE_BENCH_DIR)
	$(PYTHON) scripts/check_bench_regression.py \
	  $(STORE_BASELINE) $(STORE_BENCH_DIR)/BENCH_store.json \
	  --threshold 0.25 --metric default_total_s

# Both arms run in one process; the speedup/identity gates live in the
# CLI itself, the baseline diff guards against absolute array-arm drift.
ir-bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli ir-bench --profile quick \
	  --emit-json $(IR_BENCH_DIR)
	$(PYTHON) scripts/check_bench_regression.py \
	  $(IR_BASELINE) $(IR_BENCH_DIR)/BENCH_ir.json \
	  --threshold 0.35 --metric array_total_s

# Fresh workdir each run: the dedupe arithmetic assumes an empty store.
service-smoke:
	rm -rf $(SERVICE_SMOKE_DIR)
	PYTHONPATH=src $(PYTHON) scripts/service_smoke.py \
	  --workdir $(SERVICE_SMOKE_DIR) --jobs $${REPRO_JOBS:-1}

# The regression gate compares against this artifact's meta block, so it
# must come from a cache-less run (--no-resume) to carry fresh timings.
refresh-baseline:
	rm -rf $(BASELINE_DIR)
	PYTHONPATH=src $(PYTHON) -m repro.cli table2 --profile quick \
	  --jobs $${REPRO_JOBS:-1} --no-resume --emit-json $(BASELINE_DIR)
	cp $(BASELINE_DIR)/BENCH_table2.json benchmarks/baselines/table2_quick.json
	rm -rf $(BASELINE_DIR)
	@echo "baseline updated: review 'git diff benchmarks/baselines' and commit"

refresh-store-baseline:
	rm -rf $(BASELINE_DIR)
	PYTHONPATH=src $(PYTHON) -m repro.cli store-bench --emit-json $(BASELINE_DIR)
	cp $(BASELINE_DIR)/BENCH_store.json $(STORE_BASELINE)
	rm -rf $(BASELINE_DIR)
	@echo "store baseline updated: review 'git diff benchmarks/baselines' and commit"

refresh-ir-baseline:
	rm -rf $(BASELINE_DIR)
	PYTHONPATH=src $(PYTHON) -m repro.cli ir-bench --profile quick \
	  --emit-json $(BASELINE_DIR)
	cp $(BASELINE_DIR)/BENCH_ir.json $(IR_BASELINE)
	rm -rf $(BASELINE_DIR)
	@echo "IR baseline updated: review 'git diff benchmarks/baselines' and commit"

docs:
	PYTHONPATH=src $(PYTHON) scripts/gen_cli_docs.py docs/cli.md

lint:
	$(RUFF) check .
	$(RUFF) format --check src/repro/runner scripts
