# Convenience wrappers around the test, bench, and lint suites.
#
#   make verify   - tier-1 verification: tests/ + benchmarks/ minus `slow`
#   make bench    - the slow paper-table regenerations (quick profile)
#   make test-all - everything, slow included
#   make lint     - ruff check (whole repo) + ruff format --check (runner)
#
# REPRO_PROFILE=quick|full|paper scales the bench instances (default quick).
# REPRO_JOBS=N fans each bench's experiment grid across N worker
# processes through repro.runner (default 1; 0 = one per CPU core).

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest
RUFF ?= ruff

.PHONY: verify bench test-all lint

verify:
	$(PYTEST) -x -q

# The trailing `-m slow` overrides the default `-m "not slow"` addopts;
# benchmarks/conftest.py errors out loudly if the filter ever ends up
# deselecting every bench, so this target can't silently run nothing.
bench:
	$(PYTEST) benchmarks -m slow -q -s

test-all:
	$(PYTEST) -m "slow or not slow" -q

lint:
	$(RUFF) check .
	$(RUFF) format --check src/repro/runner scripts
