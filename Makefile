# Convenience wrappers around the test and bench suites.
#
#   make verify   - tier-1 verification: tests/ + benchmarks/ minus `slow`
#   make bench    - the slow paper-table regenerations (quick profile)
#   make test-all - everything, slow included
#
# REPRO_PROFILE=quick|full|paper scales the bench instances (default quick).

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: verify bench test-all

verify:
	$(PYTEST) -x -q

bench:
	$(PYTEST) benchmarks -m slow -q -s

test-all:
	$(PYTEST) -m "slow or not slow" -q
